//! The batch query executor: plan → route → replay → merge, with
//! concurrent batch admission.
//!
//! [`ServeEngine`] turns the reproduction's artifacts — a
//! [`LinearOrder`], the [`PageMapper`] placing it on pages, a
//! [`PackedRTree`] over the same order, and a fleet of [`Shard`]s — into
//! a concurrent query engine for batches of range and k-nearest-neighbour
//! queries. A batch flows through four phases:
//!
//! 1. **Plan** (at [`ServeEngine::submit`], chunk-parallel on the pool):
//!    each query runs against the packed R-tree. Range queries use
//!    [`PackedRTree::range_query_ordered`], so result ranks — and the
//!    page ids derived from them — are monotone; kNN queries run the
//!    [`KnnPlanner`] of the engine's configuration (best-first
//!    branch-and-bound by default, the expanding-ball probe as the
//!    retained baseline).
//! 2. **Route** (with planning): result ids become per-query page lists
//!    and per-shard slices — a pure pass of integer divisions over the
//!    order's borrowed ranks and the [`ShardMap`].
//! 3. **Replay** (pooled, admission-queued): each shard owns a FIFO work
//!    queue. A submitted batch enqueues one work unit per (query, shard)
//!    slice, **in batch order**; at most one runner per shard drains its
//!    queue on the [`WorkerPool`], taking one unit per queued batch in
//!    turn (round-robin fairness across in-flight batches) so a huge
//!    batch cannot starve a small one. Within a batch, a shard's units
//!    replay in batch order — the sequence the digest contract relies on.
//! 4. **Merge** (at [`BatchHandle::wait`]): per-query outcomes are
//!    reassembled in query order and folded into a digest plus per-shard
//!    aggregates.
//!
//! **Admission.** [`ServeEngine::submit`] returns a [`BatchHandle`]
//! without waiting for replay, so any number of batches can be in flight
//! at once; [`ServeEngine::run`] is submit-then-wait, and
//! [`ServeEngine::run_inflight`] splits one workload into several
//! concurrently admitted batches and merges the reports.
//!
//! **Determinism.** Planning and routing are pure per-query functions,
//! and a batch's replay sequence on each shard is internally ordered, so
//! result sets, page counts, run counts and the digest are bitwise
//! identical for every shard count, thread count, kNN planner and
//! in-flight batch count ([`digest_outcomes`] is invariant under batch
//! splitting). Buffer hit/miss statistics are the one scheduling-
//! dependent quantity under *concurrent* admission: interleaving changes
//! which batch finds a page warm (totals per shard still add up) —
//! exactly as in any shared-cache server.
//!
//! **Failure and recovery.** Shards break; the engine keeps answering.
//! An installed [`FaultPlan`] ([`ServeEngine::inject_faults`]) is
//! resolved *at admission* — each unit's fault stamp is a pure function
//! of its shard's admitted-unit sequence — and manifested *at the replay
//! seam*: failing attempts pay a bounded retry/backoff loop on the
//! simulated clock (see [`RecoveryConfig`]), injected panics genuinely
//! unwind through the runner's `catch_unwind`. Units no retry budget can
//! save **degrade** instead of failing the batch: [`BatchHandle::wait`]
//! returns `Ok` with per-query coverage accounting
//! ([`BatchReport::coverage`]) naming exactly which rank-ranges were
//! served from a broken slice. Per-shard circuit breakers
//! ([`crate::health::ShardBreaker`]) trip on consecutive doomed units;
//! a trip requests **failover**: at the next admission boundary the
//! tripped shard's rank-range is rebuilt on a fresh slice and published
//! under an atomic epoch swap ([`crate::shard::ShardSet`]) — in-flight
//! batches drain on their admission-time epoch while new admissions
//! route to the rebuilt slice. Panics *outside* the fault plan (routing
//! bugs, poisoned locks) surface as a typed
//! [`ServeError::ReplayPanicked`] naming every failed unit's query and
//! shard, and the affected slice is likewise rebuilt at the next
//! admission — one poisoned lock no longer wedges the engine forever.

use crate::fault::{FaultPlan, FaultState, ServeError, UnitFailure, UnitFault};
use crate::health::{
    BreakerSnapshot, RecoveryConfig, ShardBreaker, UnitDirective, UnitDisposition,
};
use crate::pool::WorkerPool;
use crate::shard::{Partition, ReadPath, Shard, ShardMap, ShardSet};
use slpm_storage::{
    chebyshev, BufferStats, IoCost, IoModel, Mbr, PackedRTree, PageLayout, PageMapper, QueryCost,
    StorageError,
};
use spectral_lpm::LinearOrder;
use std::collections::VecDeque;
use std::fmt;
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// One query of a batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Query {
    /// All points inside an axis-aligned box (inclusive).
    Range(Mbr),
    /// The `k` nearest points to `center` under the Chebyshev (L∞)
    /// metric, ties broken by point id.
    Knn {
        /// Query point.
        center: Vec<i64>,
        /// Number of neighbours.
        k: usize,
    },
}

/// Which exact-kNN planner the engine runs. Both return the identical
/// result list (ascending `(distance, id)`), so digests never depend on
/// the choice; only the tree-access cost differs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KnnPlanner {
    /// Best-first branch-and-bound on the packed R-tree
    /// ([`PackedRTree::knn_best_first`]): visits each node at most once.
    /// The default.
    BestFirst,
    /// The doubling expanding-ball probe: re-runs a growing range query
    /// until `k` matches are guaranteed, re-paying shared nodes every
    /// round. Retained as the measured baseline.
    ExpandingBall,
}

impl KnnPlanner {
    /// Parse a planner name (case-insensitive).
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s.to_ascii_lowercase().as_str() {
            "best-first" | "bestfirst" | "bf" => KnnPlanner::BestFirst,
            "expanding" | "expanding-ball" | "ball" => KnnPlanner::ExpandingBall,
            _ => return None,
        })
    }
}

impl fmt::Display for KnnPlanner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            KnnPlanner::BestFirst => "best-first",
            KnnPlanner::ExpandingBall => "expanding-ball",
        })
    }
}

/// Engine geometry and scheduling knobs.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Records per page (page size in records).
    pub records_per_page: usize,
    /// Bytes per record payload.
    pub record_size: usize,
    /// R-tree leaf fanout (defaults to one leaf per page).
    pub fanout: usize,
    /// Number of shards the pages are partitioned over.
    pub shards: usize,
    /// Worker threads; `1` executes every phase inline (serial baseline).
    pub threads: usize,
    /// Page → shard placement policy.
    pub partition: Partition,
    /// LRU frames per shard's buffer pool.
    pub buffer_pages: usize,
    /// Run-readahead window per demand miss (`0` = off). With a
    /// locality-preserving order a range query's shard pages form
    /// monotone runs, so each miss can prefetch the run's next pages in
    /// one seek; `0` keeps hit/miss accounting bitwise identical to the
    /// pre-readahead engine.
    pub readahead: usize,
    /// Seek/transfer model for the per-query I/O cost estimate.
    pub io: IoModel,
    /// kNN planning algorithm.
    pub knn_planner: KnnPlanner,
    /// Retry/timeout/breaker knobs for the fault plane.
    pub recovery: RecoveryConfig,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            records_per_page: 64,
            record_size: 64,
            fanout: 64,
            shards: 1,
            threads: 1,
            partition: Partition::Contiguous,
            buffer_pages: 64,
            readahead: 0,
            io: IoModel::default(),
            knn_planner: KnnPlanner::BestFirst,
            recovery: RecoveryConfig::default(),
        }
    }
}

/// Outcome of one query of a batch.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryOutcome {
    /// Matching point ids — ranges in linear-order (rank) sequence, kNN
    /// by ascending (Chebyshev distance, id).
    pub results: Vec<usize>,
    /// Distinct pages the query touched.
    pub pages: usize,
    /// Maximal runs of consecutive page ids (sequential reads).
    pub runs: usize,
    /// Pages served from some shard's buffer pool.
    pub hits: usize,
    /// Pages read from backing storage.
    pub misses: usize,
    /// Seek/transfer cost estimate for this query.
    pub io: IoCost,
    /// R-tree node accounting (cumulative over kNN expansions for the
    /// expanding-ball planner; at-most-once visits for best-first).
    pub tree: QueryCost,
    /// Admission-to-completion latency in seconds: from batch submission
    /// until the query's last shard unit replayed (`0.0` for queries that
    /// touch no pages). Scheduling-dependent — never part of the digest.
    pub seconds: f64,
    /// Simulated fault penalty (µs): injected stalls, timeouts and retry
    /// backoff accrued by this query's units. Deterministic for a fixed
    /// fault plan; `0.0` when nothing was injected.
    pub fault_us: f64,
    /// Pages of this query that were *not* served by a healthy slice
    /// (degraded units). `0` means the query is fault-free; the detailed
    /// rank-ranges live in [`BatchReport::coverage`].
    pub degraded_pages: usize,
}

/// Per-shard aggregates over one batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardReport {
    /// Shard id.
    pub shard: usize,
    /// Queries that touched this shard.
    pub queries: usize,
    /// Page requests routed here (hits + misses).
    pub pages_routed: usize,
    /// Sequential runs within this shard's slices.
    pub runs: usize,
    /// Buffer accounting attributable to this batch.
    pub buffer: BufferStats,
}

impl ShardReport {
    fn idle(shard: usize) -> Self {
        ShardReport {
            shard,
            queries: 0,
            pages_routed: 0,
            runs: 0,
            buffer: BufferStats::default(),
        }
    }
}

/// One replay unit that a healthy slice did not serve: the coverage
/// accounting names exactly what was lost — which query, which shard,
/// and which rank-ranges of the linear order went unserved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DegradedUnit {
    /// Query index within the batch (submission order).
    pub query: usize,
    /// Shard the unit was routed to.
    pub shard: usize,
    /// Routed pages the unit covered.
    pub pages: usize,
    /// The unserved rank-ranges, as half-open `[lo, hi)` intervals of
    /// the linear order, ascending and maximally merged.
    pub rank_ranges: Vec<(usize, usize)>,
}

impl fmt::Display for DegradedUnit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "query {} on shard {}: {} page(s), ranks",
            self.query, self.shard, self.pages
        )?;
        for (i, &(lo, hi)) in self.rank_ranges.iter().enumerate() {
            let sep = if i == 0 { " " } else { ", " };
            write!(f, "{sep}[{lo}, {hi})")?;
        }
        Ok(())
    }
}

/// Per-query coverage accounting of one batch: which queries were fully
/// served and which rank-ranges were degraded. Deterministic for a fixed
/// fault plan — degraded units are decided on the admission clock, never
/// by runner scheduling.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CoverageReport {
    /// Queries in the batch.
    pub queries: usize,
    /// Queries every unit of which was served by a healthy slice.
    pub fault_free: usize,
    /// The degraded units, ascending by `(query, shard)`.
    pub degraded_units: Vec<DegradedUnit>,
}

impl CoverageReport {
    /// Assemble from degraded units already sorted by `(query, shard)`.
    pub(crate) fn new(queries: usize, degraded_units: Vec<DegradedUnit>) -> Self {
        let mut seen = degraded_units.iter().map(|u| u.query).collect::<Vec<_>>();
        seen.dedup();
        CoverageReport {
            queries,
            fault_free: queries - seen.len(),
            degraded_units,
        }
    }

    /// Queries with at least one degraded unit.
    pub fn degraded_queries(&self) -> usize {
        self.queries - self.fault_free
    }

    /// True when every query was fully served.
    pub fn is_clean(&self) -> bool {
        self.degraded_units.is_empty()
    }
}

/// The merged result of one batch.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// Per-query outcomes, in submission order.
    pub outcomes: Vec<QueryOutcome>,
    /// Per-shard aggregates (every shard, including idle ones).
    pub shards: Vec<ShardReport>,
    /// Wall-clock seconds from submission through merge.
    pub elapsed_seconds: f64,
    /// Order-sensitive FNV-1a digest of (query position, result ids, page
    /// count, run count) — see [`digest_outcomes`]; bitwise identical
    /// across shard counts, thread counts, planners and batch splits.
    pub digest: u64,
    /// Which rank-ranges were served vs degraded, per query.
    pub coverage: CoverageReport,
}

impl BatchReport {
    /// Total matching points across the batch.
    pub fn total_results(&self) -> usize {
        self.outcomes.iter().map(|o| o.results.len()).sum()
    }

    /// Total distinct-page touches across the batch.
    pub fn total_pages(&self) -> usize {
        self.outcomes.iter().map(|o| o.pages).sum()
    }

    /// Pages read from backing storage (buffer misses).
    pub fn total_misses(&self) -> usize {
        self.outcomes.iter().map(|o| o.misses).sum()
    }

    /// Fleet-wide buffer statistics (per-shard pools merged).
    pub fn buffer_stats(&self) -> BufferStats {
        let mut total = BufferStats::default();
        for s in &self.shards {
            total.merge(&s.buffer);
        }
        total
    }

    /// Batch throughput in queries per second.
    pub fn queries_per_second(&self) -> f64 {
        if self.elapsed_seconds > 0.0 {
            self.outcomes.len() as f64 / self.elapsed_seconds
        } else {
            0.0
        }
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) of per-query page counts.
    pub fn page_quantile(&self, q: f64) -> usize {
        let mut pages: Vec<usize> = self.outcomes.iter().map(|o| o.pages).collect();
        pages.sort_unstable();
        quantile(&pages, q)
    }

    /// The batch's per-query admission-to-completion latencies (seconds)
    /// as a [`LatencySummary`] — sorted once; every quantile after that
    /// is an O(1) lookup.
    pub fn latency_summary(&self) -> LatencySummary {
        LatencySummary::new(self.outcomes.iter().map(|o| o.seconds).collect())
    }

    /// The nearest-rank `q`-quantile of per-query admission-to-completion
    /// latency (seconds); `0.0` on an empty batch. One-shot convenience
    /// over [`BatchReport::latency_summary`] — when reading more than one
    /// quantile, build the summary instead so the sample is sorted once.
    pub fn latency_quantile(&self, q: f64) -> f64 {
        self.latency_summary().quantile(q)
    }

    /// Shard-balance skew: max/mean of per-shard routed pages — `1.0` is
    /// a perfectly balanced fleet, `S` means one shard absorbed
    /// everything. `0.0` when the batch routed no pages at all. The
    /// diagnostic that shows where contiguous partitioning needs
    /// splitting under hot-spot (Zipf) traffic.
    pub fn shard_balance(&self) -> f64 {
        let total: usize = self.shards.iter().map(|s| s.pages_routed).sum();
        if total == 0 || self.shards.is_empty() {
            return 0.0;
        }
        let mean = total as f64 / self.shards.len() as f64;
        let max = self
            .shards
            .iter()
            .map(|s| s.pages_routed)
            .max()
            .unwrap_or(0) as f64;
        max / mean
    }

    /// The **degraded digest**: [`BatchReport::digest`] folded with the
    /// coverage accounting (each degraded unit's query, shard, page
    /// count and rank-ranges). Equal to the plain digest on a fault-free
    /// run; deterministic for a fixed fault plan — the proptest and
    /// chaos-gate invariant.
    pub fn degraded_digest(&self) -> u64 {
        digest_with_coverage(self.digest, &self.coverage.degraded_units)
    }
}

/// A latency sample sorted once at construction, with nearest-rank
/// quantiles. Unit-agnostic: the batch engine feeds it seconds, the
/// streaming layer simulated microseconds.
///
/// **Method.** The `q`-quantile is *nearest-rank*: the `⌈q·n⌉`-th
/// smallest sample value (1-based), i.e. the smallest observation with
/// at least a `q` fraction of the sample at or below it. Every quantile
/// is an actual observation — never an interpolation — so a reported
/// p999 is a latency some query really experienced.
#[derive(Debug, Clone, Default)]
pub struct LatencySummary {
    sorted: Vec<f64>,
}

impl LatencySummary {
    /// Build from an unordered sample. Sorts once (total order over
    /// floats, NaN-safe); all quantile reads afterwards are O(1).
    pub fn new(mut sample: Vec<f64>) -> Self {
        sample.sort_by(f64::total_cmp);
        LatencySummary { sorted: sample }
    }

    /// Sample size.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when the sample is empty.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The nearest-rank `q`-quantile (`q` clamped to `[0, 1]`); `0.0` on
    /// an empty sample.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.sorted.len() as f64).ceil() as usize;
        self.sorted[rank.saturating_sub(1).min(self.sorted.len() - 1)]
    }

    /// The SLO trio in one call: `(p50, p99, p999)`.
    pub fn p50_p99_p999(&self) -> (f64, f64, f64) {
        (
            self.quantile(0.50),
            self.quantile(0.99),
            self.quantile(0.999),
        )
    }

    /// Samples strictly above `target`, as `(count, fraction)`;
    /// `(0, 0.0)` on an empty sample.
    pub fn violations(&self, target: f64) -> (usize, f64) {
        if self.sorted.is_empty() {
            return (0, 0.0);
        }
        let over = self.sorted.len() - self.sorted.partition_point(|&v| v <= target);
        (over, over as f64 / self.sorted.len() as f64)
    }

    /// The largest sample (`0.0` when empty).
    pub fn max(&self) -> f64 {
        self.sorted.last().copied().unwrap_or(0.0)
    }
}

/// Nearest-rank quantile of an ascending sample (0 on an empty batch).
fn quantile(sorted: &[usize], q: f64) -> usize {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (q.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

/// FNV-1a over a word stream.
fn fnv1a64(hash: &mut u64, word: u64) {
    *hash ^= word;
    *hash = hash.wrapping_mul(0x100_0000_01b3);
}

/// The batch digest: an order-sensitive FNV-1a fold of every outcome's
/// (position, result count, result ids, page count, run count).
///
/// Defined over a *sequence* of outcomes rather than a batch, so the
/// digest of one N-query batch equals the digest of the concatenated
/// outcomes of the same N queries split across any number of in-flight
/// batches — the invariant the `{1,4}` in-flight parity gate checks.
/// Scheduling-dependent fields (hits, misses, latency) never enter.
pub fn digest_outcomes<'a, I>(outcomes: I) -> u64
where
    I: IntoIterator<Item = &'a QueryOutcome>,
{
    let mut digest = 0xcbf2_9ce4_8422_2325u64;
    for (qidx, outcome) in outcomes.into_iter().enumerate() {
        fnv1a64(&mut digest, qidx as u64);
        fnv1a64(&mut digest, outcome.results.len() as u64);
        for &id in &outcome.results {
            fnv1a64(&mut digest, id as u64);
        }
        fnv1a64(&mut digest, outcome.pages as u64);
        fnv1a64(&mut digest, outcome.runs as u64);
    }
    digest
}

/// Fold degraded-coverage accounting into a digest: each unit's query,
/// shard, page count and rank-ranges, in the (already deterministic)
/// `(query, shard)` order. Shared by [`BatchReport::degraded_digest`]
/// and the streaming layer.
pub fn digest_with_coverage(digest: u64, degraded: &[DegradedUnit]) -> u64 {
    let mut digest = digest;
    for unit in degraded {
        fnv1a64(&mut digest, unit.query as u64);
        fnv1a64(&mut digest, unit.shard as u64);
        fnv1a64(&mut digest, unit.pages as u64);
        for &(lo, hi) in &unit.rank_ranges {
            fnv1a64(&mut digest, lo as u64);
            fnv1a64(&mut digest, hi as u64);
        }
    }
    digest
}

/// Merge an ascending page list into half-open `[lo, hi)` rank ranges
/// (`records_per_page` ranks per page, the tail clamped to `records`).
fn rank_ranges(pages: &[usize], records_per_page: usize, records: usize) -> Vec<(usize, usize)> {
    let mut out: Vec<(usize, usize)> = Vec::new();
    for &page in pages {
        let lo = page * records_per_page;
        let hi = ((page + 1) * records_per_page).min(records);
        match out.last_mut() {
            Some(last) if last.1 == lo => last.1 = hi,
            _ => out.push((lo, hi)),
        }
    }
    out
}

/// A planned query: its result ids plus tree accounting.
struct Plan {
    results: Vec<usize>,
    /// Ranges: results are already in rank order; kNN results are in
    /// (distance, id) order and need a sort on the page side.
    rank_ordered: bool,
    tree: QueryCost,
}

/// One query's page list routed to one shard.
struct ShardSlice {
    shard: usize,
    /// Routed page ids; [`ServeEngine::submit`] moves this list into the
    /// shard's replay [`Unit`] (no second copy lives for the in-flight
    /// window), leaving `page_count` behind for the merge accounting.
    pages: Vec<usize>,
    page_count: usize,
    runs: usize,
}

/// A routed query: global page profile plus per-shard slices.
struct Route {
    pages: usize,
    runs: usize,
    slices: Vec<ShardSlice>,
}

/// One (query, shard) replay unit of a batch, carrying its
/// admission-time fault/breaker verdict to the replay seam.
struct Unit {
    qidx: usize,
    pages: Vec<usize>,
    directive: UnitDirective,
}

/// A batch's pending units on one shard, FIFO in batch order. Pins the
/// epoch the batch was admitted against: the runner replays these units
/// on `slices`, so a failover swap never moves in-flight work.
struct BatchWork {
    state: Arc<BatchState>,
    units: VecDeque<Unit>,
    slices: Arc<ShardSet>,
}

/// One shard's admission queue: in-flight batches, each with its ordered
/// remaining units, the is-a-runner-scheduled flag, and the queued-unit
/// count that bounded admission gates on.
#[derive(Default)]
struct ShardQueue {
    batches: VecDeque<BatchWork>,
    running: bool,
    /// Replay units currently enqueued (not yet taken by the runner) —
    /// the depth [`ServeEngine::submit_planned_bounded`] compares against
    /// its bound, and what [`ServeEngine::queue_depths`] snapshots.
    pending_units: usize,
}

/// A shard's queue paired with the condvar bounded submitters sleep on
/// until the runner drains the queue below their depth bound.
#[derive(Default)]
struct ShardGate {
    queue: Mutex<ShardQueue>,
    space: Condvar,
}

impl ShardGate {
    fn default_vec(shards: usize) -> Vec<ShardGate> {
        (0..shards).map(|_| ShardGate::default()).collect()
    }
}

/// Fleet health under one lock: per-shard breakers plus the fault
/// plan's deterministic cursors. Taken once per admission (to stamp the
/// batch's units in admission order) and briefly by runners reporting
/// un-modeled panics.
struct FleetHealth {
    breakers: Vec<ShardBreaker>,
    faults: Option<FaultState>,
}

impl FleetHealth {
    /// Stamp the next admitted unit on `shard`: resolve its fault from
    /// the plan's cursors, feed the verdict through the breaker, and
    /// return what the replay seam should do.
    fn stamp_unit(&mut self, shard: usize, pages: &[usize], rec: &RecoveryConfig) -> UnitDirective {
        let incarnation = self.breakers[shard].incarnation();
        let fault = match self.faults.as_mut() {
            Some(state) => state.stamp(shard, incarnation, pages),
            None => UnitFault::NONE,
        };
        let doomed = fault.will_degrade(rec.timeout_us, rec.max_attempts);
        match self.breakers[shard].on_unit(doomed, rec) {
            UnitDisposition::FastFail => UnitDirective::FastFail,
            UnitDisposition::Execute if fault.is_none() => UnitDirective::Serve,
            UnitDisposition::Execute => UnitDirective::Faulted(fault),
        }
    }
}

/// State shared between the engine, its shard runners and outstanding
/// batch handles (everything the pool's `'static` jobs need).
struct EngineShared {
    /// The current epoch's slices; swapped atomically at admission
    /// boundaries when a rebuild is pending.
    slices: Mutex<Arc<ShardSet>>,
    queues: Vec<ShardGate>,
    fleet: Mutex<FleetHealth>,
    recovery: RecoveryConfig,
    /// Page geometry the runner needs to turn degraded pages into
    /// rank-ranges.
    records_per_page: usize,
    records: usize,
}

/// Mutable replay progress of one in-flight batch.
struct BatchProgress {
    /// Units not yet replayed (0 = batch complete).
    pending_units: usize,
    /// Remaining units per query; a query completes when its count hits 0.
    units_left: Vec<usize>,
    hits: Vec<usize>,
    misses: Vec<usize>,
    /// Per-shard buffer-stat deltas attributable to this batch.
    shard_buffers: Vec<BufferStats>,
    /// Per-query completion latency (seconds since submission).
    latency: Vec<f64>,
    /// Per-query simulated fault penalty (stalls, timeouts, backoff).
    fault_us: Vec<f64>,
    /// Per-query pages not served by a healthy slice.
    degraded_pages: Vec<usize>,
    /// Degraded units with their lost rank-ranges (coverage accounting).
    degraded: Vec<DegradedUnit>,
    /// Units whose replay panicked *outside* the fault plan; surfaced as
    /// [`ServeError::ReplayPanicked`] at the waiter (never a hang).
    panicked: Vec<UnitFailure>,
}

/// Completion tracking for one submitted batch.
struct BatchState {
    started: Instant,
    progress: Mutex<BatchProgress>,
    done: Condvar,
}

impl BatchState {
    /// Fold one replayed unit into the batch's progress; wakes waiters
    /// when the last unit lands.
    fn record_unit(
        &self,
        shard: usize,
        qidx: usize,
        hits: usize,
        misses: usize,
        delta: BufferStats,
        penalty_us: f64,
    ) {
        let mut progress = self.progress.lock().expect("batch progress lock");
        progress.hits[qidx] += hits;
        progress.misses[qidx] += misses;
        progress.shard_buffers[shard].merge(&delta);
        progress.fault_us[qidx] += penalty_us;
        Self::retire(&mut progress, qidx, &self.started);
        if progress.pending_units == 0 {
            self.done.notify_all();
        }
    }

    /// A unit exhausted its retries (or was fast-failed by an open
    /// breaker): retire it as degraded, recording the rank-ranges its
    /// pages covered so the waiter's coverage report can name the loss.
    fn record_degraded(
        &self,
        qidx: usize,
        shard: usize,
        pages: usize,
        rank_ranges: Vec<(usize, usize)>,
        penalty_us: f64,
    ) {
        let mut progress = self.progress.lock().expect("batch progress lock");
        progress.fault_us[qidx] += penalty_us;
        progress.degraded_pages[qidx] += pages;
        progress.degraded.push(DegradedUnit {
            query: qidx,
            shard,
            pages,
            rank_ranges,
        });
        Self::retire(&mut progress, qidx, &self.started);
        if progress.pending_units == 0 {
            self.done.notify_all();
        }
    }

    /// A unit's replay panicked outside the fault plan: record which
    /// (query, shard) failed and still retire the unit, so waiters always
    /// wake (the failure surfaces as an error at [`BatchHandle::wait`]
    /// instead of hanging the batch).
    fn record_panic(&self, qidx: usize, shard: usize) {
        let mut progress = self.progress.lock().expect("batch progress lock");
        progress.panicked.push(UnitFailure { query: qidx, shard });
        Self::retire(&mut progress, qidx, &self.started);
        if progress.pending_units == 0 {
            self.done.notify_all();
        }
    }

    fn retire(progress: &mut BatchProgress, qidx: usize, started: &Instant) {
        progress.units_left[qidx] -= 1;
        if progress.units_left[qidx] == 0 {
            progress.latency[qidx] = started.elapsed().as_secs_f64();
        }
        progress.pending_units -= 1;
    }
}

/// What one replay unit resolved to after the retry loop.
enum UnitResult {
    Served {
        hits: usize,
        misses: usize,
        delta: BufferStats,
        penalty_us: f64,
    },
    Degraded {
        penalty_us: f64,
    },
    /// Un-modeled panic (routing bug, poisoned lock, …).
    Panicked,
}

/// Replay one unit against its batch's pinned epoch, manifesting the
/// admission-time directive: injected stalls/failures pay their simulated
/// penalty through a bounded retry/backoff loop; injected panics really
/// unwind (and are caught); fast-fails skip the shard entirely.
fn replay_unit(shared: &EngineShared, set: &ShardSet, shard_id: usize, unit: &Unit) -> UnitResult {
    let fault = match &unit.directive {
        UnitDirective::FastFail => {
            // Open breaker: don't touch the shard at all. The unit pays
            // nothing — the failure was already paid for by the units
            // that tripped the breaker.
            return UnitResult::Degraded { penalty_us: 0.0 };
        }
        UnitDirective::Serve => UnitFault::NONE,
        UnitDirective::Faulted(fault) => *fault,
    };
    let rec = &shared.recovery;
    let fail_attempts = fault.effective_fail_attempts(rec.timeout_us);
    let mut penalty_us = 0.0;
    // Bounded retry with backoff: each failed attempt pays the stall (or
    // the timeout, whichever cuts it short) plus backoff before the next
    // try. Never an unbounded loop around a faultable call.
    for attempt in 0..rec.max_attempts.max(1) {
        let last = attempt + 1 >= rec.max_attempts.max(1);
        if u64::from(attempt) < u64::from(fail_attempts) {
            if fault.panics {
                // Injected panics really unwind (and are caught right
                // here), exercising the exact seam un-modeled panics
                // travel; `resume_unwind` skips the global panic hook so
                // faulted runs stay quiet on stderr.
                let unwound = std::panic::catch_unwind(|| {
                    std::panic::resume_unwind(Box::new("injected replay-unit panic"))
                });
                debug_assert!(unwound.is_err());
            }
            if fault.fail_page != usize::MAX {
                // A `pagerr` stamp travels the *real* read path: arm the
                // shard's store and fault the page — the failure this
                // attempt pays for is a genuine typed `StorageError`
                // coming back off the storage tier, identically on
                // memory- and disk-backed slices.
                if let Ok(shard) = set.shard(shard_id).lock() {
                    shard.store().arm_read_error(fault.fail_page);
                    let read = shard.store().try_read_page(fault.fail_page);
                    debug_assert!(
                        matches!(read, Err(StorageError::Injected { .. })),
                        "armed page read must fail"
                    );
                }
            }
            penalty_us += rec.failed_attempt_us(fault.stall_us, attempt, last);
            if last {
                return UnitResult::Degraded { penalty_us };
            }
            continue;
        }
        // This attempt succeeds (after paying any sub-timeout stall).
        penalty_us += fault.stall_us.min(rec.timeout_us);
        let replayed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut shard = set.shard(shard_id).lock().expect("shard lock");
            let before = shard.buffer_stats();
            let outcome = shard.replay(&unit.pages);
            let after = shard.buffer_stats();
            let delta = BufferStats {
                hits: after.hits - before.hits,
                misses: after.misses - before.misses,
                evictions: after.evictions - before.evictions,
                prefetched: after.prefetched - before.prefetched,
                prefetch_hits: after.prefetch_hits - before.prefetch_hits,
            };
            outcome.map(|(h, m)| (h, m, delta))
        }));
        return match replayed {
            Ok(Ok((hits, misses, delta))) => UnitResult::Served {
                hits,
                misses,
                delta,
                penalty_us,
            },
            // A genuine storage failure on the serving attempt —
            // corruption, truncation, a device error: no retry budget
            // fixes bad bytes, so the unit degrades (coverage names its
            // rank-ranges) instead of failing the batch.
            Ok(Err(_)) => UnitResult::Degraded { penalty_us },
            Err(_) => UnitResult::Panicked,
        };
    }
    UnitResult::Degraded { penalty_us }
}

/// Drain one shard's queue: repeatedly take the front batch's next unit,
/// rotate that batch to the back of the line (round-robin fairness across
/// in-flight batches), and replay the unit against the shard. Exactly one
/// runner is active per shard (the `running` flag), which is what keeps
/// each batch's units on a shard in batch order.
fn run_shard_queue(shared: &EngineShared, shard_id: usize) {
    // xtask:allow(unbounded-retry): queue-drain loop, not a retry loop —
    // each iteration consumes one queued unit and the loop exits when the
    // queue is empty; the faultable call inside is bounded by
    // `replay_unit`'s attempt budget.
    loop {
        let (state, unit, slices) = {
            let gate = &shared.queues[shard_id];
            let mut queue = gate.queue.lock().expect("shard queue lock");
            match queue.batches.pop_front() {
                None => {
                    // Queue drained; clear the flag under the same lock a
                    // submitter checks it, so no work is ever stranded.
                    queue.running = false;
                    return;
                }
                Some(mut work) => {
                    let unit = work.units.pop_front().expect("queued batches have work");
                    let state = Arc::clone(&work.state);
                    let slices = Arc::clone(&work.slices);
                    if !work.units.is_empty() {
                        queue.batches.push_back(work);
                    }
                    // Taking a unit frees one slot of the shard's bounded
                    // depth; wake any submitter blocked on space (under
                    // the same lock, so the wakeup can't be lost).
                    queue.pending_units -= 1;
                    gate.space.notify_all();
                    (state, unit, slices)
                }
            }
        };
        match replay_unit(shared, &slices, shard_id, &unit) {
            UnitResult::Served {
                hits,
                misses,
                delta,
                penalty_us,
            } => state.record_unit(shard_id, unit.qidx, hits, misses, delta, penalty_us),
            UnitResult::Degraded { penalty_us } => {
                let ranges = rank_ranges(&unit.pages, shared.records_per_page, shared.records);
                state.record_degraded(unit.qidx, shard_id, unit.pages.len(), ranges, penalty_us);
            }
            UnitResult::Panicked => {
                // An un-modeled panic (routing bug, poisoned shard lock,
                // …) must not kill the runner silently: on the pool that
                // would strand the batch (waiters hang forever) and wedge
                // the shard behind a `running` flag nobody clears. Record
                // which unit failed (the waiter surfaces it as a
                // [`ServeError`]) and mark the shard for a rebuild so the
                // fleet self-heals at the next admission boundary.
                shared.fleet.lock().expect("fleet health lock").breakers[shard_id]
                    .note_unexpected_panic();
                state.record_panic(unit.qidx, shard_id);
            }
        }
    }
}

/// A planned-and-routed batch that has **not** been admitted yet — the
/// seam streaming admission control builds on. [`ServeEngine::plan_batch`]
/// produces one; [`PlannedBatch::shard_loads`] exposes where each query's
/// pages would land (so a policy can decide to shed or block *before* any
/// work is enqueued); [`PlannedBatch::select`] drops shed queries; and
/// [`ServeEngine::submit_planned`] /
/// [`ServeEngine::submit_planned_bounded`] admit whatever remains. Plans
/// are never recomputed along the way.
pub struct PlannedBatch {
    plans: Vec<Plan>,
    routes: Vec<Route>,
}

impl PlannedBatch {
    /// Number of planned queries.
    pub fn len(&self) -> usize {
        self.plans.len()
    }

    /// True when no queries remain.
    pub fn is_empty(&self) -> bool {
        self.plans.is_empty()
    }

    /// The shards query `qidx` routes to, as `(shard, pages, runs)`
    /// triples in ascending shard order — the loads an admission policy
    /// charges against its per-shard depth bound.
    pub fn shard_loads(&self, qidx: usize) -> Vec<(usize, usize, usize)> {
        self.routes[qidx]
            .slices
            .iter()
            .map(|s| (s.shard, s.pages.len(), s.runs))
            .collect()
    }

    /// Keep only the queries whose `keep[qidx]` flag is set (shed the
    /// rest); survivors renumber densely in their original order, so the
    /// admitted batch's digest equals a one-shot run of exactly the
    /// admitted query sequence.
    ///
    /// # Panics
    /// Panics when `keep.len()` differs from [`PlannedBatch::len`].
    pub fn select(self, keep: &[bool]) -> PlannedBatch {
        assert_eq!(keep.len(), self.plans.len(), "one keep flag per query");
        let (plans, routes) = self
            .plans
            .into_iter()
            .zip(self.routes)
            .zip(keep)
            .filter_map(|((p, r), &k)| k.then_some((p, r)))
            .unzip();
        PlannedBatch { plans, routes }
    }
}

/// A submitted batch: resolves to its [`BatchReport`] via
/// [`BatchHandle::wait`]. Owns the batch's plans and routes, so it
/// borrows nothing from the engine and any number of handles can be in
/// flight while further batches are submitted.
pub struct BatchHandle {
    state: Arc<BatchState>,
    plans: Vec<Plan>,
    routes: Vec<Route>,
    io: IoModel,
    shards: usize,
}

impl BatchHandle {
    /// Number of queries in this batch.
    pub fn queries(&self) -> usize {
        self.plans.len()
    }

    /// True once every replay unit has completed (never blocks).
    pub fn is_complete(&self) -> bool {
        self.state
            .progress
            .lock()
            .expect("batch progress lock")
            .pending_units
            == 0
    }

    /// Block until the batch completes, then merge per-query outcomes (in
    /// submission order), per-shard aggregates, the coverage report and
    /// the digest.
    ///
    /// # Errors
    /// [`ServeError::ReplayPanicked`] when any replay unit panicked
    /// *outside* the fault plan (a real bug, not an injected failure) —
    /// naming every failed (query, shard). Injected failures never error:
    /// they degrade, and the coverage report names what was lost.
    pub fn wait(self) -> Result<BatchReport, ServeError> {
        let queries = self.queries();
        let (outcomes, shards, degraded, elapsed_seconds) = self.finish()?;
        let digest = digest_outcomes(&outcomes);
        Ok(BatchReport {
            outcomes,
            shards,
            elapsed_seconds,
            digest,
            coverage: CoverageReport::new(queries, degraded),
        })
    }

    /// [`BatchHandle::wait`] without the digest fold — the merge kernel
    /// [`ServeEngine::run_inflight`] builds on, so a split workload pays
    /// for exactly one digest pass over the concatenated outcomes.
    #[allow(clippy::type_complexity)]
    fn finish(
        self,
    ) -> Result<(Vec<QueryOutcome>, Vec<ShardReport>, Vec<DegradedUnit>, f64), ServeError> {
        let BatchHandle {
            state,
            plans,
            routes,
            io,
            shards,
        } = self;
        let (
            hits,
            misses,
            shard_buffers,
            latency,
            fault_us,
            degraded_pages,
            mut degraded,
            mut panicked,
        ) = {
            let mut progress = state.progress.lock().expect("batch progress lock");
            while progress.pending_units > 0 {
                progress = state.done.wait(progress).expect("batch progress lock");
            }
            (
                std::mem::take(&mut progress.hits),
                std::mem::take(&mut progress.misses),
                std::mem::take(&mut progress.shard_buffers),
                std::mem::take(&mut progress.latency),
                std::mem::take(&mut progress.fault_us),
                std::mem::take(&mut progress.degraded_pages),
                std::mem::take(&mut progress.degraded),
                std::mem::take(&mut progress.panicked),
            )
        };
        if !panicked.is_empty() {
            panicked.sort_unstable();
            return Err(ServeError::ReplayPanicked { failures: panicked });
        }
        // Replay order is scheduling-dependent; the report is not: sort
        // coverage into (query, shard) order so degraded digests are
        // schedule-invariant.
        degraded.sort_unstable_by_key(|d| (d.query, d.shard));
        let mut shard_reports: Vec<ShardReport> = (0..shards).map(ShardReport::idle).collect();
        for route in &routes {
            for slice in &route.slices {
                let report = &mut shard_reports[slice.shard];
                report.queries += 1;
                report.pages_routed += slice.page_count;
                report.runs += slice.runs;
            }
        }
        for (shard, buffer) in shard_buffers.into_iter().enumerate() {
            shard_reports[shard].buffer = buffer;
        }
        let outcomes: Vec<QueryOutcome> = plans
            .into_iter()
            .zip(routes)
            .enumerate()
            .map(|(qidx, (plan, route))| QueryOutcome {
                results: plan.results,
                pages: route.pages,
                runs: route.runs,
                hits: hits[qidx],
                misses: misses[qidx],
                io: IoCost {
                    pages: route.pages,
                    runs: route.runs,
                    total: route.runs as f64 * io.seek_cost + route.pages as f64 * io.transfer_cost,
                },
                tree: plan.tree,
                seconds: latency[qidx],
                fault_us: fault_us[qidx],
                degraded_pages: degraded_pages[qidx],
            })
            .collect();
        Ok((
            outcomes,
            shard_reports,
            degraded,
            state.started.elapsed().as_secs_f64(),
        ))
    }
}

/// The sharded, batched query engine.
///
/// Borrows the point set and order (the caller keeps ownership, exactly
/// like [`PackedRTree::pack`]); owns the shards and the worker pool, so
/// buffer pools stay warm across batches.
pub struct ServeEngine<'a> {
    points: &'a [Vec<i64>],
    order: &'a LinearOrder,
    rtree: PackedRTree<'a>,
    bounds: Mbr,
    layout: PageLayout,
    shard_map: ShardMap,
    shared: Arc<EngineShared>,
    /// The fleet-shared page placement, kept so failover can rebuild a
    /// tripped shard's slice without re-deriving it.
    placement: Arc<Vec<(usize, usize)>>,
    /// `None` when `threads == 1`: the serial baseline runs inline.
    pool: Option<WorkerPool>,
    /// `Some(path)`: shard slices fault pages off this disk page file
    /// (and failover rebuilds reopen it) instead of materialising them.
    page_file: Option<PathBuf>,
    cfg: EngineConfig,
}

impl<'a> ServeEngine<'a> {
    /// Build an engine over `points` laid out by `order`, with shards
    /// materialised in memory.
    ///
    /// # Panics
    /// Panics when `points` is empty or its length differs from the
    /// order's (caller bugs), or on zero geometry knobs.
    pub fn new(points: &'a [Vec<i64>], order: &'a LinearOrder, cfg: EngineConfig) -> Self {
        ServeEngine::with_storage(points, order, cfg, None)
            .expect("in-memory shard builds are infallible")
    }

    /// Build an engine whose shard slices read the disk page file at
    /// `page_file` (written by [`slpm_storage::write_page_file`] under
    /// the same order and geometry) instead of materialising pages in
    /// memory. Query results, page accounting and digests are bitwise
    /// identical to [`ServeEngine::new`]; only where the bytes live
    /// differs.
    ///
    /// # Errors
    /// Any [`StorageError`] from opening/validating the file — bad magic,
    /// version skew, truncation, or a geometry/order-digest mismatch.
    pub fn with_page_file(
        points: &'a [Vec<i64>],
        order: &'a LinearOrder,
        cfg: EngineConfig,
        page_file: PathBuf,
    ) -> Result<Self, StorageError> {
        ServeEngine::with_storage(points, order, cfg, Some(page_file))
    }

    fn with_storage(
        points: &'a [Vec<i64>],
        order: &'a LinearOrder,
        cfg: EngineConfig,
        page_file: Option<PathBuf>,
    ) -> Result<Self, StorageError> {
        assert_eq!(points.len(), order.len(), "order/point-set mismatch");
        let layout = PageLayout::new(cfg.records_per_page);
        let mapper = PageMapper::new(order, layout);
        let shard_map = ShardMap::new(cfg.shards, mapper.num_pages(), cfg.partition);
        // One placement shared by the whole fleet (the store-side analogue
        // of the rank-borrowing PageMapper — no per-shard dense copies).
        let placement = slpm_storage::PageStore::placement_of(&mapper);
        let shards: Vec<Shard> = (0..cfg.shards)
            .map(|id| {
                Shard::build(
                    id,
                    &shard_map,
                    &mapper,
                    Arc::clone(&placement),
                    cfg.record_size,
                    ReadPath {
                        buffer_pages: cfg.buffer_pages,
                        readahead: cfg.readahead,
                        page_file: page_file.as_deref(),
                    },
                )
            })
            .collect::<Result<_, _>>()?;
        let bounds = Mbr::of_points(points.iter().map(|p| p.as_slice()));
        assert!(
            cfg.recovery.validate().is_ok(),
            "invalid recovery config: {}",
            cfg.recovery.validate().unwrap_err()
        );
        Ok(ServeEngine {
            points,
            order,
            rtree: PackedRTree::pack(points, order, cfg.fanout.max(2)),
            bounds,
            layout,
            shard_map,
            shared: Arc::new(EngineShared {
                slices: Mutex::new(Arc::new(ShardSet::new(shards))),
                queues: ShardGate::default_vec(cfg.shards),
                fleet: Mutex::new(FleetHealth {
                    breakers: (0..cfg.shards).map(|_| ShardBreaker::default()).collect(),
                    faults: None,
                }),
                recovery: cfg.recovery,
                records_per_page: cfg.records_per_page,
                records: points.len(),
            }),
            placement,
            pool: (cfg.threads > 1).then(|| WorkerPool::new(cfg.threads)),
            page_file,
            cfg,
        })
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// The linear order being served.
    pub fn order(&self) -> &LinearOrder {
        self.order
    }

    /// The page → shard assignment.
    pub fn shard_map(&self) -> &ShardMap {
        &self.shard_map
    }

    /// Total pages of the underlying store.
    pub fn num_pages(&self) -> usize {
        self.shard_map.num_pages()
    }

    /// The engine's persistent worker pool, when pooled (`threads > 1`) —
    /// exposed so callers can borrow the same workers for eigensolver
    /// kernels via [`WorkerPool::linalg_pool`] (one pool abstraction for
    /// compute and serving).
    pub fn worker_pool(&self) -> Option<&WorkerPool> {
        self.pool.as_ref()
    }

    /// Execute a batch to completion; per-query outcomes come back in
    /// submission order. Equivalent to `submit(queries).wait()`.
    ///
    /// # Errors
    /// See [`BatchHandle::wait`].
    pub fn run(&self, queries: &[Query]) -> Result<BatchReport, ServeError> {
        self.submit(queries).wait()
    }

    /// Split one workload into `inflight` contiguous sub-batches, admit
    /// them all concurrently, and merge the reports in submission order:
    /// outcomes concatenate, per-shard aggregates sum, and the digest is
    /// recomputed over the concatenation — by [`digest_outcomes`]'s
    /// split-invariance it equals the single-batch digest of the same
    /// workload.
    /// # Errors
    /// See [`BatchHandle::wait`]; every sub-batch is drained before an
    /// error is returned (no work is left in flight), and failure /
    /// coverage indices are remapped to whole-workload query positions.
    pub fn run_inflight(
        &self,
        queries: &[Query],
        inflight: usize,
    ) -> Result<BatchReport, ServeError> {
        let inflight = inflight.max(1).min(queries.len().max(1));
        if inflight <= 1 {
            return self.run(queries);
        }
        // xtask:allow(wall-clock): latency accounting only, excluded from digests
        let start = Instant::now();
        let chunk = queries.len().div_ceil(inflight);
        let handles: Vec<BatchHandle> = queries.chunks(chunk).map(|c| self.submit(c)).collect();
        let mut outcomes: Vec<QueryOutcome> = Vec::with_capacity(queries.len());
        let mut degraded: Vec<DegradedUnit> = Vec::new();
        let mut failures: Vec<UnitFailure> = Vec::new();
        let mut shard_reports: Vec<ShardReport> =
            (0..self.cfg.shards).map(ShardReport::idle).collect();
        let mut next_base = 0usize;
        for handle in handles {
            // Chunks renumber their queries from 0; offset everything a
            // sub-batch reports back to whole-workload positions.
            let base = next_base;
            next_base += handle.queries();
            match handle.finish() {
                Ok((sub_outcomes, sub_shards, sub_degraded, _elapsed)) => {
                    for sub in &sub_shards {
                        let merged = &mut shard_reports[sub.shard];
                        merged.queries += sub.queries;
                        merged.pages_routed += sub.pages_routed;
                        merged.runs += sub.runs;
                        merged.buffer.merge(&sub.buffer);
                    }
                    outcomes.extend(sub_outcomes);
                    degraded.extend(sub_degraded.into_iter().map(|mut d| {
                        d.query += base;
                        d
                    }));
                }
                // The merged report is abandoned on error, but every
                // handle is still drained (no work left in flight) and
                // every failure collected.
                Err(ServeError::ReplayPanicked { failures: sub }) => {
                    failures.extend(sub.into_iter().map(|mut f| {
                        f.query += base;
                        f
                    }));
                }
            }
        }
        if !failures.is_empty() {
            failures.sort_unstable();
            return Err(ServeError::ReplayPanicked { failures });
        }
        let digest = digest_outcomes(&outcomes);
        Ok(BatchReport {
            coverage: CoverageReport::new(outcomes.len(), degraded),
            outcomes,
            shards: shard_reports,
            elapsed_seconds: start.elapsed().as_secs_f64(),
            digest,
        })
    }

    /// Admit a batch: plan and route every query (chunk-parallel on the
    /// pool when available), enqueue its replay units on the per-shard
    /// FIFO queues, schedule runners for newly idle shards, and return a
    /// completion handle **without waiting for replay**. Any number of
    /// batches may be in flight; each shard round-robins across them.
    /// Equivalent to `submit_planned(plan_batch(queries))`.
    pub fn submit(&self, queries: &[Query]) -> BatchHandle {
        self.submit_planned(self.plan_batch(queries))
    }

    /// Plan and route a batch **without admitting it**: the streaming
    /// admission seam. The returned [`PlannedBatch`] exposes per-query
    /// shard loads (so a policy can shed or block before any work is
    /// enqueued) and admits via [`ServeEngine::submit_planned`] or
    /// [`ServeEngine::submit_planned_bounded`] — the plans are computed
    /// exactly once either way.
    pub fn plan_batch(&self, queries: &[Query]) -> PlannedBatch {
        let (plans, routes) = self.plan_and_route(queries);
        PlannedBatch { plans, routes }
    }

    /// Admit an already-planned batch (see [`ServeEngine::plan_batch`]).
    pub fn submit_planned(&self, batch: PlannedBatch) -> BatchHandle {
        self.admit(batch, None)
    }

    /// Admit an already-planned batch under a per-shard depth bound:
    /// before enqueuing a shard's units, block until that shard's queued
    /// unit count has drained below `depth` (clamped to ≥ 1) — real
    /// backpressure, not accounting. The bound is checked at admission
    /// time, so one batch's own units may overshoot it; what it
    /// guarantees is that an unbounded stream of submitters cannot grow
    /// any queue without limit.
    ///
    /// Deadlock-free by construction: a blocked submitter holds no other
    /// shard's lock while waiting (shards are gated one at a time, in
    /// ascending id order), and runners never wait — every queued unit
    /// eventually drains and signals `space`. On a serial engine
    /// (`threads == 1`) queues are always empty between submissions, so
    /// the bound never blocks.
    pub fn submit_planned_bounded(&self, batch: PlannedBatch, depth: usize) -> BatchHandle {
        self.admit(batch, Some(depth.max(1)))
    }

    /// A snapshot of each shard's queued (not yet replayed) unit count —
    /// the backpressure observable bounded admission gates on.
    pub fn queue_depths(&self) -> Vec<usize> {
        self.shared
            .queues
            .iter()
            .map(|g| g.queue.lock().expect("shard queue lock").pending_units)
            .collect()
    }

    /// Arm a deterministic fault plan: subsequently admitted units are
    /// stamped against it in admission order. Replaces any previous plan
    /// (its cursors reset); `FaultPlan::default()` disarms.
    pub fn inject_faults(&self, plan: FaultPlan) {
        let mut fleet = self.shared.fleet.lock().expect("fleet health lock");
        fleet.faults = (!plan.is_empty()).then(|| FaultState::new(plan, self.cfg.shards));
    }

    /// A point-in-time view of every shard's circuit breaker.
    pub fn health_snapshot(&self) -> Vec<BreakerSnapshot> {
        self.shared
            .fleet
            .lock()
            .expect("fleet health lock")
            .breakers
            .iter()
            .enumerate()
            .map(|(shard, b)| b.snapshot(shard))
            .collect()
    }

    /// The current slice epoch (bumped by every failover swap; `0` until
    /// a shard is rebuilt).
    pub fn epoch(&self) -> u64 {
        self.shared
            .slices
            .lock()
            .expect("shard slices lock")
            .epoch()
    }

    /// Swap rebuilt slices in for every shard whose breaker requested a
    /// rebuild since the last admission: build a fresh [`Shard`] (cold
    /// buffer pool, fresh lock) for each, publish a new [`ShardSet`]
    /// under the next epoch, and leave old-epoch `Arc`s to drain in
    /// whatever batches still hold them.
    fn install_rebuilds(&self) {
        let pending: Vec<usize> = {
            let mut fleet = self.shared.fleet.lock().expect("fleet health lock");
            (0..self.cfg.shards)
                .filter(|&s| fleet.breakers[s].take_rebuild())
                .collect()
        };
        if pending.is_empty() {
            return;
        }
        let mapper = PageMapper::new(self.order, self.layout);
        let replacements: Vec<(usize, Shard)> = pending
            .into_iter()
            .map(|id| {
                let fresh = Shard::build(
                    id,
                    &self.shard_map,
                    &mapper,
                    Arc::clone(&self.placement),
                    self.cfg.record_size,
                    ReadPath {
                        buffer_pages: self.cfg.buffer_pages,
                        readahead: self.cfg.readahead,
                        page_file: self.page_file.as_deref(),
                    },
                )
                // The file opened at engine construction; failing to
                // reopen it mid-failover is an environment change no
                // rebuild can paper over.
                .expect("rebuild reopens the page file the engine started with");
                (id, fresh)
            })
            .collect();
        let mut slices = self.shared.slices.lock().expect("shard slices lock");
        *slices = Arc::new(slices.with_replacements(replacements));
    }

    /// The shared enqueue path behind [`ServeEngine::submit_planned`]
    /// (`depth: None`) and [`ServeEngine::submit_planned_bounded`].
    fn admit(&self, batch: PlannedBatch, depth: Option<usize>) -> BatchHandle {
        // xtask:allow(wall-clock): latency accounting only, excluded from digests
        let started = Instant::now();
        let PlannedBatch { plans, mut routes } = batch;
        let queries = plans.len();

        // Failover happens at admission boundaries: swap in rebuilt
        // slices for any shard whose breaker requested one, *before*
        // this batch pins its epoch. In-flight batches keep draining the
        // old epoch's `Arc`.
        self.install_rebuilds();
        let slices = Arc::clone(&*self.shared.slices.lock().expect("shard slices lock"));

        // Build the per-shard unit queues, each in batch (query) order.
        // Page lists move out of the routes (page_count stays behind for
        // the merge), so only one copy exists while the batch is in
        // flight. Fault/breaker verdicts are stamped here — serially,
        // under one fleet lock, in query order within each shard — so
        // resolution depends only on the admission sequence, never on
        // replay scheduling.
        let mut per_shard: Vec<VecDeque<Unit>> =
            (0..self.cfg.shards).map(|_| VecDeque::new()).collect();
        let mut units_left = vec![0usize; queries];
        {
            let mut fleet = self.shared.fleet.lock().expect("fleet health lock");
            let rec = self.shared.recovery;
            for (qidx, route) in routes.iter_mut().enumerate() {
                units_left[qidx] = route.slices.len();
                for slice in &mut route.slices {
                    let pages = std::mem::take(&mut slice.pages);
                    let directive = fleet.stamp_unit(slice.shard, &pages, &rec);
                    per_shard[slice.shard].push_back(Unit {
                        qidx,
                        pages,
                        directive,
                    });
                }
            }
        }
        let pending_units: usize = units_left.iter().sum();
        let state = Arc::new(BatchState {
            started,
            progress: Mutex::new(BatchProgress {
                pending_units,
                units_left,
                hits: vec![0; queries],
                misses: vec![0; queries],
                shard_buffers: vec![BufferStats::default(); self.cfg.shards],
                latency: vec![0.0; queries],
                fault_us: vec![0.0; queries],
                degraded_pages: vec![0; queries],
                degraded: Vec::new(),
                panicked: Vec::new(),
            }),
            done: Condvar::new(),
        });

        // Enqueue, collecting shards that need a runner scheduled. The
        // running flag flips under the queue lock, so a concurrent
        // runner draining to empty either sees this work or leaves
        // `running == false` for us to claim.
        let mut to_run: Vec<usize> = Vec::new();
        for (shard_id, units) in per_shard.into_iter().enumerate() {
            if units.is_empty() {
                continue;
            }
            let gate = &self.shared.queues[shard_id];
            let mut queue = gate.queue.lock().expect("shard queue lock");
            if let Some(bound) = depth {
                while queue.pending_units >= bound {
                    queue = gate.space.wait(queue).expect("shard queue lock");
                }
            }
            queue.pending_units += units.len();
            queue.batches.push_back(BatchWork {
                state: Arc::clone(&state),
                units,
                slices: Arc::clone(&slices),
            });
            if !queue.running {
                queue.running = true;
                to_run.push(shard_id);
            }
        }
        match &self.pool {
            Some(pool) => {
                for shard_id in to_run {
                    let shared = Arc::clone(&self.shared);
                    pool.submit(move || run_shard_queue(&shared, shard_id));
                }
            }
            // Serial baseline: drain inline before returning, so the
            // handle is already complete (and replay order is the batch
            // order — the deterministic buffer-accounting baseline).
            None => {
                for shard_id in to_run {
                    run_shard_queue(&self.shared, shard_id);
                }
            }
        }
        BatchHandle {
            state,
            plans,
            routes,
            io: self.cfg.io,
            shards: self.cfg.shards,
        }
    }

    /// Plan and route every query of a batch — pure per-query work,
    /// chunked across the pool when one exists (the planning half of the
    /// hot path; replay overlaps it across in-flight batches).
    fn plan_and_route(&self, queries: &[Query]) -> (Vec<Plan>, Vec<Route>) {
        let rpp = self.layout.records_per_page;
        let shard_map = self.shard_map;
        let plan_route = |q: &Query| {
            let plan = self.plan(q);
            let route = route_query(
                &plan.results,
                plan.rank_ordered,
                self.order.ranks(),
                rpp,
                &shard_map,
            );
            (plan, route)
        };
        match &self.pool {
            Some(pool) if queries.len() > 1 => {
                let mut slots: Vec<Option<(Plan, Route)>> =
                    (0..queries.len()).map(|_| None).collect();
                // A few chunks per worker for load balance; chunking never
                // affects results (pure per-query functions).
                let chunk = queries.len().div_ceil(pool.threads() * 4).max(1);
                let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = slots
                    .chunks_mut(chunk)
                    .zip(queries.chunks(chunk))
                    .map(|(out, qs)| {
                        let pr = &plan_route;
                        Box::new(move || {
                            for (slot, q) in out.iter_mut().zip(qs) {
                                *slot = Some(pr(q));
                            }
                        }) as Box<dyn FnOnce() + Send + '_>
                    })
                    .collect();
                pool.run_scoped(jobs);
                slots
                    .into_iter()
                    .map(|slot| slot.expect("every query planned"))
                    .unzip()
            }
            _ => queries.iter().map(plan_route).unzip(),
        }
    }

    /// Plan one query against the R-tree.
    fn plan(&self, query: &Query) -> Plan {
        match query {
            Query::Range(mbr) => {
                let (results, tree) = self.rtree.range_query_ordered(mbr);
                Plan {
                    results,
                    rank_ordered: true,
                    tree,
                }
            }
            Query::Knn { center, k } => {
                let (results, tree) = match self.cfg.knn_planner {
                    KnnPlanner::BestFirst => self.rtree.knn_best_first(center, *k),
                    KnnPlanner::ExpandingBall => self.knn_expanding(center, *k),
                };
                Plan {
                    results,
                    rank_ordered: false,
                    tree,
                }
            }
        }
    }

    /// The baseline exact kNN probe under the Chebyshev (L∞) metric: grow
    /// a box of radius `r` around the centre (doubling) until it holds
    /// ≥ `k` points or covers the data bounds — under L∞ the box of
    /// radius `r` *is* the metric ball, so once `k` candidates are inside
    /// the `k` nearest are among them. Node costs accumulate over the
    /// expansion rounds (re-visits are genuinely re-paid, as an iterative
    /// server would; [`QueryCost::absorb`] saturates rather than
    /// overflowing on adversarial workloads). The query box is allocated
    /// once and resized in place across rounds.
    fn knn_expanding(&self, center: &[i64], k: usize) -> (Vec<usize>, QueryCost) {
        let mut tree = QueryCost::ZERO;
        let k = k.min(self.points.len());
        if k == 0 {
            return (Vec::new(), tree);
        }
        let mut radius: i64 = 1;
        let mut query = Mbr {
            lo: center.to_vec(),
            hi: center.to_vec(),
        };
        // xtask:allow(unbounded-retry): radius doubling over a finite grid —
        // the query window covers the whole space within log2(extent) passes,
        // at which point every candidate is found and the loop breaks.
        loop {
            for d in 0..center.len() {
                query.lo[d] = center[d] - radius;
                query.hi[d] = center[d] + radius;
            }
            let (ids, cost) = self.rtree.range_query_ordered(&query);
            tree.absorb(&cost);
            let covers_all = query.lo.iter().zip(&self.bounds.lo).all(|(q, b)| q <= b)
                && query.hi.iter().zip(&self.bounds.hi).all(|(q, b)| q >= b);
            if ids.len() >= k || covers_all {
                let mut scored: Vec<(i64, usize)> = ids
                    .into_iter()
                    .map(|id| (chebyshev(center, &self.points[id]), id))
                    .collect();
                scored.sort_unstable();
                scored.truncate(k);
                let results: Vec<usize> = scored.into_iter().map(|(_, id)| id).collect();
                tree.results = results.len();
                return (results, tree);
            }
            radius *= 2;
        }
    }
}

/// Route one query's result ids to pages and shard slices — a pure
/// function of the rank array, page size and shard map.
fn route_query(
    ids: &[usize],
    rank_ordered: bool,
    ranks: &[usize],
    records_per_page: usize,
    shard_map: &ShardMap,
) -> Route {
    let mut pages: Vec<usize> = ids.iter().map(|&id| ranks[id] / records_per_page).collect();
    if !rank_ordered {
        pages.sort_unstable();
    }
    pages.dedup();
    let runs = count_runs(&pages);
    let mut slices: Vec<ShardSlice> = Vec::new();
    for &page in &pages {
        let shard = shard_map.shard_of(page);
        match slices.iter_mut().find(|s| s.shard == shard) {
            Some(slice) => slice.pages.push(page),
            None => slices.push(ShardSlice {
                shard,
                pages: vec![page],
                page_count: 0,
                runs: 0,
            }),
        }
    }
    // Deterministic shard visit order (slices appear in first-touch order
    // above; normalise to ascending shard id) and per-slice run counts.
    slices.sort_by_key(|s| s.shard);
    for slice in &mut slices {
        slice.page_count = slice.pages.len();
        slice.runs = count_runs(&slice.pages);
    }
    Route {
        pages: pages.len(),
        runs,
        slices,
    }
}

/// Maximal runs of consecutive ids in an ascending list.
fn count_runs(pages: &[usize]) -> usize {
    let mut runs = 0;
    let mut prev: Option<usize> = None;
    for &p in pages {
        if prev != Some(p.wrapping_sub(1)) {
            runs += 1;
        }
        prev = Some(p);
    }
    runs
}

#[cfg(test)]
mod tests {
    use super::*;
    use slpm_graph::grid::GridSpec;

    use crate::testing::with_watchdog;
    use crate::workload::grid_points;

    fn small_engine() -> (Vec<Vec<i64>>, LinearOrder) {
        let spec = GridSpec::cube(8, 2);
        (grid_points(&spec), LinearOrder::identity(64))
    }

    fn queries() -> Vec<Query> {
        vec![
            Query::Range(Mbr {
                lo: vec![1, 1],
                hi: vec![3, 4],
            }),
            Query::Knn {
                center: vec![4, 4],
                k: 5,
            },
            Query::Range(Mbr {
                lo: vec![0, 0],
                hi: vec![7, 7],
            }),
            Query::Range(Mbr {
                lo: vec![20, 20],
                hi: vec![30, 30],
            }),
        ]
    }

    #[test]
    fn range_results_match_brute_force() {
        let (points, order) = small_engine();
        let cfg = EngineConfig {
            records_per_page: 4,
            fanout: 4,
            ..Default::default()
        };
        let engine = ServeEngine::new(&points, &order, cfg);
        let report = engine.run(&queries()).expect("no replay panic");
        let q0 = Mbr {
            lo: vec![1, 1],
            hi: vec![3, 4],
        };
        let mut got = report.outcomes[0].results.clone();
        got.sort_unstable();
        let want: Vec<usize> = (0..points.len())
            .filter(|&i| q0.contains_point(&points[i]))
            .collect();
        assert_eq!(got, want);
        // Range results stream in rank order.
        for w in report.outcomes[0].results.windows(2) {
            assert!(order.rank_of(w[0]) < order.rank_of(w[1]));
        }
        // Whole-grid query returns everything; empty box returns nothing.
        assert_eq!(report.outcomes[2].results.len(), 64);
        assert!(report.outcomes[3].results.is_empty());
        assert_eq!(report.outcomes[3].pages, 0);
        assert_eq!(report.outcomes[3].seconds, 0.0);
    }

    #[test]
    fn knn_results_match_brute_force_under_both_planners() {
        let (points, order) = small_engine();
        for planner in [KnnPlanner::BestFirst, KnnPlanner::ExpandingBall] {
            let cfg = EngineConfig {
                records_per_page: 4,
                fanout: 4,
                knn_planner: planner,
                ..Default::default()
            };
            let engine = ServeEngine::new(&points, &order, cfg);
            for (center, k) in [(vec![4i64, 4], 5usize), (vec![0, 0], 3), (vec![7, 7], 64)] {
                let report = engine
                    .run(&[Query::Knn {
                        center: center.clone(),
                        k,
                    }])
                    .expect("no replay panic");
                let got = &report.outcomes[0].results;
                let mut want: Vec<(i64, usize)> = (0..points.len())
                    .map(|i| (chebyshev(&center, &points[i]), i))
                    .collect();
                want.sort_unstable();
                let want: Vec<usize> = want.into_iter().take(k).map(|(_, id)| id).collect();
                assert_eq!(got, &want, "planner {planner} center {center:?} k {k}");
            }
            // k larger than the point set clamps.
            let report = engine
                .run(&[Query::Knn {
                    center: vec![3, 3],
                    k: 1000,
                }])
                .expect("no replay panic");
            assert_eq!(report.outcomes[0].results.len(), 64);
        }
    }

    #[test]
    fn planners_agree_on_results_and_digest_but_not_cost() {
        let (points, order) = small_engine();
        let base = EngineConfig {
            records_per_page: 4,
            fanout: 4,
            ..Default::default()
        };
        // kNN probes whose first unit-radius ball is far short of k, so
        // the expanding ball needs several doubling rounds (re-paying the
        // root path each time) while best-first still visits each node at
        // most once.
        let mut qs = queries();
        qs.push(Query::Knn {
            center: vec![0, 0],
            k: 30,
        });
        qs.push(Query::Knn {
            center: vec![7, 0],
            k: 20,
        });
        let best = ServeEngine::new(
            &points,
            &order,
            EngineConfig {
                knn_planner: KnnPlanner::BestFirst,
                ..base
            },
        )
        .run(&qs)
        .expect("no replay panic");
        let ball = ServeEngine::new(
            &points,
            &order,
            EngineConfig {
                knn_planner: KnnPlanner::ExpandingBall,
                ..base
            },
        )
        .run(&qs)
        .expect("no replay panic");
        assert_eq!(best.digest, ball.digest);
        let mut best_nodes = 0usize;
        let mut ball_nodes = 0usize;
        for (b, e) in best.outcomes.iter().zip(&ball.outcomes) {
            assert_eq!(b.results, e.results);
            assert_eq!(b.pages, e.pages);
            best_nodes += b.tree.nodes_visited;
            ball_nodes += e.tree.nodes_visited;
        }
        // The kNN query re-pays nodes under the expanding ball.
        assert!(
            best_nodes < ball_nodes,
            "best-first {best_nodes} vs expanding-ball {ball_nodes}"
        );
    }

    #[test]
    fn digest_and_outcomes_invariant_across_shards_and_threads() {
        let (points, order) = small_engine();
        let base = EngineConfig {
            records_per_page: 4,
            fanout: 4,
            buffer_pages: 4,
            ..Default::default()
        };
        let qs = queries();
        let reference = ServeEngine::new(&points, &order, base)
            .run(&qs)
            .expect("no replay panic");
        for shards in [1usize, 2, 4] {
            for threads in [1usize, 2, 4] {
                for partition in [Partition::Contiguous, Partition::RoundRobin] {
                    let cfg = EngineConfig {
                        shards,
                        threads,
                        partition,
                        ..base
                    };
                    let engine = ServeEngine::new(&points, &order, cfg);
                    let report = engine.run(&qs).expect("no replay panic");
                    assert_eq!(
                        report.digest, reference.digest,
                        "digest diverged at S={shards} T={threads} {partition}"
                    );
                    for (a, b) in report.outcomes.iter().zip(&reference.outcomes) {
                        assert_eq!(a.results, b.results);
                        assert_eq!(a.pages, b.pages);
                        assert_eq!(a.runs, b.runs);
                    }
                }
            }
        }
    }

    #[test]
    fn inflight_splits_preserve_outcomes_and_digest() {
        let (points, order) = small_engine();
        let base = EngineConfig {
            records_per_page: 4,
            fanout: 4,
            buffer_pages: 8,
            ..Default::default()
        };
        let qs = queries();
        let reference = ServeEngine::new(&points, &order, base)
            .run(&qs)
            .expect("no replay panic");
        for threads in [1usize, 4] {
            for shards in [1usize, 4] {
                for inflight in [1usize, 2, 4] {
                    let cfg = EngineConfig {
                        shards,
                        threads,
                        ..base
                    };
                    let engine = ServeEngine::new(&points, &order, cfg);
                    let report = engine.run_inflight(&qs, inflight).expect("no replay panic");
                    assert_eq!(
                        report.digest, reference.digest,
                        "digest diverged at S={shards} T={threads} inflight={inflight}"
                    );
                    assert_eq!(report.outcomes.len(), qs.len());
                    for (a, b) in report.outcomes.iter().zip(&reference.outcomes) {
                        assert_eq!(a.results, b.results);
                        assert_eq!(a.pages, b.pages);
                        assert_eq!(a.runs, b.runs);
                    }
                    // Page totals partition exactly whatever the split.
                    let routed: usize = report.shards.iter().map(|s| s.pages_routed).sum();
                    assert_eq!(routed, report.total_pages());
                    let hm: usize = report.outcomes.iter().map(|o| o.hits + o.misses).sum();
                    assert_eq!(routed, hm);
                }
            }
        }
    }

    /// Write the test grid's page file to a unique temp path (the caller
    /// removes it once every engine holding it open is done).
    fn temp_page_file(
        tag: &str,
        order: &LinearOrder,
        records_per_page: usize,
        record_size: usize,
    ) -> PathBuf {
        let path =
            std::env::temp_dir().join(format!("slpm-engine-{}-{tag}.pages", std::process::id()));
        let mapper = PageMapper::new(order, PageLayout::new(records_per_page));
        slpm_storage::write_page_file(&path, &mapper, record_size).expect("page file writes");
        path
    }

    #[test]
    fn disk_backed_engine_is_bitwise_identical_to_memory() {
        // The out-of-core acceptance bar: same config, the disk-backed
        // engine and the in-memory engine agree bitwise — results, page
        // counts, runs, digests, and (single-batch) buffer accounting —
        // across the shard × thread × partition × inflight matrix.
        let (points, order) = small_engine();
        let path = temp_page_file("parity", &order, 4, 64);
        let qs = queries();
        for shards in [1usize, 2, 4] {
            for threads in [1usize, 2] {
                for partition in [Partition::Contiguous, Partition::RoundRobin] {
                    for inflight in [1usize, 2] {
                        let cfg = EngineConfig {
                            records_per_page: 4,
                            fanout: 4,
                            buffer_pages: 4,
                            shards,
                            threads,
                            partition,
                            ..Default::default()
                        };
                        let tag = format!("S={shards} T={threads} {partition} I={inflight}");
                        let mem = ServeEngine::new(&points, &order, cfg)
                            .run_inflight(&qs, inflight)
                            .expect("no replay panic");
                        let disk = ServeEngine::with_page_file(&points, &order, cfg, path.clone())
                            .expect("page file opens")
                            .run_inflight(&qs, inflight)
                            .expect("no replay panic");
                        assert_eq!(disk.digest, mem.digest, "digest diverged at {tag}");
                        for (d, m) in disk.outcomes.iter().zip(&mem.outcomes) {
                            assert_eq!(d.results, m.results, "{tag}");
                            assert_eq!(d.pages, m.pages, "{tag}");
                            assert_eq!(d.runs, m.runs, "{tag}");
                        }
                        // Hit/miss splits are scheduling-dependent only
                        // under concurrent admission; a single batch must
                        // account identically on both backings.
                        if inflight == 1 {
                            for (d, m) in disk.outcomes.iter().zip(&mem.outcomes) {
                                assert_eq!(d.hits, m.hits, "{tag}");
                                assert_eq!(d.misses, m.misses, "{tag}");
                            }
                            for (d, m) in disk.shards.iter().zip(&mem.shards) {
                                assert_eq!(d.buffer, m.buffer, "shard accounting at {tag}");
                            }
                        }
                    }
                }
            }
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn readahead_preserves_digests_and_cuts_demand_misses() {
        // Ordered range sweeps: each query's shard pages form one
        // monotone run, the shape readahead exists for. With readahead on
        // the digest is unchanged, demand misses drop (prefetched pages
        // are admitted off the demand path), and the in-memory engine
        // under the same readahead matches the disk engine bitwise.
        let (points, order) = small_engine();
        let path = temp_page_file("readahead", &order, 4, 64);
        let qs: Vec<Query> = (0..4i64)
            .map(|i| {
                Query::Range(Mbr {
                    lo: vec![2 * i, 0],
                    hi: vec![2 * i + 1, 7],
                })
            })
            .collect();
        let cfg = EngineConfig {
            records_per_page: 4,
            fanout: 4,
            shards: 2,
            buffer_pages: 8,
            ..Default::default()
        };
        let plain = ServeEngine::with_page_file(&points, &order, cfg, path.clone())
            .expect("page file opens")
            .run(&qs)
            .expect("no replay panic");
        let ra_cfg = EngineConfig {
            readahead: 4,
            ..cfg
        };
        let ra = ServeEngine::with_page_file(&points, &order, ra_cfg, path.clone())
            .expect("page file opens")
            .run(&qs)
            .expect("no replay panic");
        assert_eq!(ra.digest, plain.digest, "readahead must not change results");
        for (a, b) in ra.outcomes.iter().zip(&plain.outcomes) {
            assert_eq!(a.results, b.results);
        }
        let misses = |r: &BatchReport| r.shards.iter().map(|s| s.buffer.misses).sum::<usize>();
        let prefetched: usize = ra.shards.iter().map(|s| s.buffer.prefetched).sum();
        let prefetch_hits: usize = ra.shards.iter().map(|s| s.buffer.prefetch_hits).sum();
        assert!(prefetched > 0, "sweeps must trigger prefetch");
        assert!(prefetch_hits > 0, "prefetched pages must be used");
        assert!(
            misses(&ra) < misses(&plain),
            "readahead demand misses {} must undercut plain {}",
            misses(&ra),
            misses(&plain)
        );
        // Same readahead, memory backing: bitwise-identical accounting.
        let mem = ServeEngine::new(&points, &order, ra_cfg)
            .run(&qs)
            .expect("no replay panic");
        assert_eq!(mem.digest, ra.digest);
        for (d, m) in ra.shards.iter().zip(&mem.shards) {
            assert_eq!(d.buffer, m.buffer, "backings must account identically");
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn page_error_degrades_and_names_the_failed_pages_rank_range() {
        // `pagerr:3@0` fails the first *real* disk read of page 3. With
        // no retry budget the owning unit degrades, and the coverage
        // report's rank-ranges must cover the failed page's records
        // (page 3 holds ranks 12..16 at 4 records/page).
        let (points, order) = small_engine();
        let path = temp_page_file("pagerr", &order, 4, 64);
        let cfg = EngineConfig {
            records_per_page: 4,
            fanout: 4,
            shards: 2,
            recovery: RecoveryConfig {
                max_attempts: 1,
                ..Default::default()
            },
            ..Default::default()
        };
        let engine = ServeEngine::with_page_file(&points, &order, cfg, path.clone())
            .expect("page file opens");
        engine.inject_faults(FaultPlan::parse("pagerr:3@0").unwrap());
        let report = engine.run(&queries()).expect("degrades, not errors");
        assert!(!report.coverage.is_clean());
        let covers = report
            .coverage
            .degraded_units
            .iter()
            .any(|d| d.rank_ranges.iter().any(|&(lo, hi)| lo <= 12 && 16 <= hi));
        assert!(
            covers,
            "coverage must name the failed page's rank-range: {:?}",
            report.coverage.degraded_units
        );
        // The one-shot error is consumed: a second run is clean.
        let again = engine.run(&queries()).expect("no replay panic");
        assert!(again.coverage.is_clean());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn concurrent_handles_can_overlap() {
        let (points, order) = small_engine();
        let cfg = EngineConfig {
            records_per_page: 4,
            fanout: 4,
            shards: 2,
            threads: 2,
            ..Default::default()
        };
        let engine = ServeEngine::new(&points, &order, cfg);
        let qs = queries();
        // Admit three batches before waiting on any of them.
        let handles: Vec<BatchHandle> = (0..3).map(|_| engine.submit(&qs)).collect();
        assert!(handles.iter().all(|h| h.queries() == qs.len()));
        let reports: Vec<BatchReport> = handles
            .into_iter()
            .map(|h| h.wait().expect("no replay panic"))
            .collect();
        for r in &reports {
            assert_eq!(r.digest, reports[0].digest);
            assert_eq!(r.outcomes.len(), qs.len());
        }
        // The engine still serves after the overlap.
        let again = engine.run(&qs).expect("no replay panic");
        assert_eq!(again.digest, reports[0].digest);
    }

    #[test]
    fn replay_panic_surfaces_as_error_at_wait_then_self_heals() {
        // An un-modeled panicking replay (here: a poisoned shard lock)
        // must surface as `Err(ServeError::ReplayPanicked)` from
        // wait()/run(), never as a hang — and the failed shard's slice is
        // rebuilt at the next admission, so the engine keeps serving.
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // silence expected panics
        for threads in [1usize, 2] {
            let (points, order) = small_engine();
            let cfg = EngineConfig {
                records_per_page: 4,
                fanout: 4,
                threads,
                ..Default::default()
            };
            let engine = ServeEngine::new(&points, &order, cfg);
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let slices = Arc::clone(&*engine.shared.slices.lock().unwrap());
                let _guard = slices.shard(0).lock().unwrap();
                panic!("poison the shard lock");
            }));
            let err = engine
                .run(&queries())
                .expect_err("wait must surface replay failures");
            let ServeError::ReplayPanicked { failures } = &err;
            assert!(
                !failures.is_empty() && failures.iter().all(|f| f.shard == 0),
                "threads={threads}: {failures:?}"
            );
            // The error names every lost (query, shard) pair.
            assert!(err.to_string().contains("query 0 on shard 0"), "{err}");
            // Self-heal: the rebuild swaps in a fresh slice (new lock).
            let again = engine
                .run(&queries())
                .expect("fleet self-heals after a rebuild");
            assert_eq!(again.outcomes.len(), 4);
            assert!(again.coverage.is_clean());
            assert!(engine.epoch() >= 1, "rebuild must bump the epoch");
        }
        std::panic::set_hook(prev);
    }

    #[test]
    fn zero_query_batch_completes_immediately() {
        // The degenerate batch: no queries, hence no units and no runner.
        // `pending_units` starts at 0, so the handle must already be
        // complete and wait() must return without ever touching the pool.
        with_watchdog(
            std::time::Duration::from_secs(30),
            "zero-query batch",
            || {
                for threads in [1usize, 2] {
                    let (points, order) = small_engine();
                    let cfg = EngineConfig {
                        records_per_page: 4,
                        fanout: 4,
                        shards: 2,
                        threads,
                        ..Default::default()
                    };
                    let engine = ServeEngine::new(&points, &order, cfg);
                    let handle = engine.submit(&[]);
                    assert_eq!(handle.queries(), 0);
                    assert!(handle.is_complete(), "no units means nothing pending");
                    let report = handle.wait().expect("no replay panic");
                    assert!(report.outcomes.is_empty());
                    assert_eq!(report.digest, digest_outcomes(&[]));
                    // The engine still serves real work afterwards.
                    assert_eq!(
                        engine
                            .run(&queries())
                            .expect("no replay panic")
                            .outcomes
                            .len(),
                        4
                    );
                }
            },
        );
    }

    #[test]
    fn crafted_poisoned_unit_fails_wait_with_a_clear_message() {
        // Inject a replay unit naming a page the shard's store slice does
        // not own, so `read_page` panics inside the runner. The waiter
        // must get an error naming the lost (query, shard) — never a hang
        // (the watchdog turns a hang into a clear failure).
        with_watchdog(std::time::Duration::from_secs(30), "poisoned unit", || {
            let prev = std::panic::take_hook();
            std::panic::set_hook(Box::new(|_| {})); // silence expected panics
            let (points, order) = small_engine();
            let cfg = EngineConfig {
                records_per_page: 4,
                fanout: 4,
                shards: 2,
                threads: 2,
                ..Default::default()
            };
            let engine = ServeEngine::new(&points, &order, cfg);
            let state = Arc::new(BatchState {
                started: Instant::now(),
                progress: Mutex::new(BatchProgress {
                    pending_units: 1,
                    units_left: vec![1],
                    hits: vec![0],
                    misses: vec![0],
                    shard_buffers: vec![BufferStats::default(); 2],
                    latency: vec![0.0],
                    fault_us: vec![0.0],
                    degraded_pages: vec![0],
                    degraded: Vec::new(),
                    panicked: Vec::new(),
                }),
                done: Condvar::new(),
            });
            let mut units = VecDeque::new();
            units.push_back(Unit {
                qidx: 0,
                pages: vec![usize::MAX],
                directive: UnitDirective::Serve,
            });
            {
                let mut queue = engine.shared.queues[0]
                    .queue
                    .lock()
                    .expect("shard queue lock");
                queue.pending_units += 1;
                queue.batches.push_back(BatchWork {
                    state: Arc::clone(&state),
                    units,
                    slices: Arc::clone(&*engine.shared.slices.lock().unwrap()),
                });
                queue.running = true;
            }
            let shared = Arc::clone(&engine.shared);
            engine
                .pool
                .as_ref()
                .expect("threads > 1 builds a pool")
                .submit(move || run_shard_queue(&shared, 0));
            let handle = BatchHandle {
                state,
                plans: Vec::new(),
                routes: Vec::new(),
                io: engine.cfg.io,
                shards: 2,
            };
            let err = handle
                .wait()
                .expect_err("wait must surface the poisoned unit");
            let msg = err.to_string();
            assert!(
                msg.contains("replay unit(s) panicked during this batch"),
                "unexpected error message: {msg}"
            );
            // Satellite: the message names exactly what was lost.
            assert!(msg.contains("query 0 on shard 0"), "{msg}");
            // The un-modeled panic marked shard 0 for a rebuild: the next
            // admission swaps in a fresh slice (fresh lock included), so
            // the engine self-heals instead of failing forever.
            let again = engine
                .run(&queries())
                .expect("fleet self-heals after the rebuild");
            assert_eq!(again.outcomes.len(), 4);
            assert!(engine.epoch() >= 1);
            std::panic::set_hook(prev);
        });
    }

    #[test]
    fn more_inflight_batches_than_shards_preserves_outcomes() {
        // 16 single-query batches over 2 shard queues: far more in-flight
        // handles than shards, so every queue round-robins across many
        // batches. Outcomes and digest must match the one-batch serial
        // reference.
        with_watchdog(
            std::time::Duration::from_secs(30),
            "inflight > shards",
            || {
                let (points, order) = small_engine();
                let base = EngineConfig {
                    records_per_page: 4,
                    fanout: 4,
                    buffer_pages: 8,
                    ..Default::default()
                };
                let qs: Vec<Query> = (0..4).flat_map(|_| queries()).collect();
                let reference = ServeEngine::new(&points, &order, base)
                    .run(&qs)
                    .expect("no replay panic");
                let cfg = EngineConfig {
                    shards: 2,
                    threads: 2,
                    ..base
                };
                let engine = ServeEngine::new(&points, &order, cfg);
                let handles: Vec<BatchHandle> = qs.chunks(1).map(|c| engine.submit(c)).collect();
                assert!(handles.len() > 4 * engine.config().shards);
                let outcomes: Vec<QueryOutcome> = handles
                    .into_iter()
                    .flat_map(|h| h.wait().expect("no replay panic").outcomes)
                    .collect();
                assert_eq!(digest_outcomes(&outcomes), reference.digest);
                for (a, b) in outcomes.iter().zip(&reference.outcomes) {
                    assert_eq!(a.results, b.results);
                    assert_eq!(a.pages, b.pages);
                    assert_eq!(a.runs, b.runs);
                }
            },
        );
    }

    #[test]
    fn single_pooled_worker_serves_many_shards_and_batches() {
        // Pin the pool to one worker under 4 shards and 3 overlapping
        // batches: all shard runners queue behind a single thread, so
        // completion relies on runners never blocking on one another.
        with_watchdog(std::time::Duration::from_secs(30), "single worker", || {
            let (points, order) = small_engine();
            let base = EngineConfig {
                records_per_page: 4,
                fanout: 4,
                buffer_pages: 8,
                ..Default::default()
            };
            let qs = queries();
            let reference = ServeEngine::new(&points, &order, base)
                .run(&qs)
                .expect("no replay panic");
            let cfg = EngineConfig {
                shards: 4,
                threads: 2,
                ..base
            };
            let mut engine = ServeEngine::new(&points, &order, cfg);
            engine.pool = Some(WorkerPool::new(1));
            let handles: Vec<BatchHandle> = (0..3).map(|_| engine.submit(&qs)).collect();
            for handle in handles {
                let report = handle.wait().expect("no replay panic");
                assert_eq!(report.digest, reference.digest);
                for (a, b) in report.outcomes.iter().zip(&reference.outcomes) {
                    assert_eq!(a.results, b.results);
                }
            }
        });
    }

    #[test]
    fn page_reads_match_unsharded_store_accounting() {
        // Total distinct-page touches must equal what PageStore::serve_query
        // would read per query on the full store.
        let (points, order) = small_engine();
        let cfg = EngineConfig {
            records_per_page: 4,
            fanout: 4,
            shards: 2,
            ..Default::default()
        };
        let engine = ServeEngine::new(&points, &order, cfg);
        let report = engine.run(&queries()).expect("no replay panic");
        let layout = PageLayout::new(4);
        let mapper = PageMapper::new(&order, layout);
        let store = slpm_storage::PageStore::build(&mapper, order.len(), 8);
        for (q, outcome) in queries().iter().zip(&report.outcomes) {
            let sorted_ids = {
                let mut ids = outcome.results.clone();
                ids.sort_unstable();
                ids
            };
            let direct = store.serve_query(sorted_ids.iter().copied());
            assert_eq!(outcome.pages, direct, "query {q:?}");
        }
    }

    #[test]
    fn buffer_reuse_across_batches_warms_up() {
        let (points, order) = small_engine();
        let cfg = EngineConfig {
            records_per_page: 4,
            fanout: 4,
            buffer_pages: 32,
            ..Default::default()
        };
        let engine = ServeEngine::new(&points, &order, cfg);
        let qs = queries();
        let cold = engine.run(&qs).expect("no replay panic");
        let warm = engine.run(&qs).expect("no replay panic");
        assert!(warm.buffer_stats().hits >= cold.buffer_stats().hits);
        // Second identical batch with a big enough pool: everything hits.
        assert_eq!(warm.total_misses(), 0);
        assert_eq!(warm.digest, cold.digest);
    }

    #[test]
    fn shard_reports_cover_routed_pages() {
        let (points, order) = small_engine();
        let cfg = EngineConfig {
            records_per_page: 4,
            fanout: 4,
            shards: 4,
            partition: Partition::RoundRobin,
            ..Default::default()
        };
        let engine = ServeEngine::new(&points, &order, cfg);
        let report = engine.run(&queries()).expect("no replay panic");
        let routed: usize = report.shards.iter().map(|s| s.pages_routed).sum();
        assert_eq!(routed, report.total_pages());
        let hits_misses: usize = report.outcomes.iter().map(|o| o.hits + o.misses).sum();
        assert_eq!(routed, hits_misses);
        // Round-robin spreads the whole-grid query across all shards.
        assert!(report.shards.iter().all(|s| s.queries >= 1));
        // Round-robin over a uniform batch is well balanced.
        let balance = report.shard_balance();
        assert!((1.0..2.0).contains(&balance), "balance {balance}");
    }

    #[test]
    fn latencies_are_recorded_for_page_touching_queries() {
        let (points, order) = small_engine();
        let cfg = EngineConfig {
            records_per_page: 4,
            fanout: 4,
            shards: 2,
            threads: 2,
            ..Default::default()
        };
        let engine = ServeEngine::new(&points, &order, cfg);
        let report = engine.run(&queries()).expect("no replay panic");
        for outcome in &report.outcomes {
            if outcome.pages > 0 {
                assert!(outcome.seconds > 0.0);
                assert!(outcome.seconds <= report.elapsed_seconds);
            } else {
                assert_eq!(outcome.seconds, 0.0);
            }
        }
        assert!(report.latency_quantile(0.99) >= report.latency_quantile(0.5));
        assert_eq!(
            BatchReport {
                outcomes: Vec::new(),
                shards: Vec::new(),
                elapsed_seconds: 0.0,
                digest: 0,
                coverage: CoverageReport::default(),
            }
            .latency_quantile(0.5),
            0.0
        );
    }

    #[test]
    fn quantiles_and_throughput_helpers() {
        assert_eq!(quantile(&[], 0.5), 0);
        assert_eq!(quantile(&[7], 0.5), 7);
        assert_eq!(quantile(&[1, 2, 3, 4], 0.5), 2);
        assert_eq!(quantile(&[1, 2, 3, 4], 0.99), 4);
        assert_eq!(quantile(&[1, 2, 3, 4], 0.0), 1);
        let (points, order) = small_engine();
        let engine = ServeEngine::new(
            &points,
            &order,
            EngineConfig {
                records_per_page: 4,
                fanout: 4,
                ..Default::default()
            },
        );
        let report = engine.run(&queries()).expect("no replay panic");
        assert!(report.page_quantile(0.99) >= report.page_quantile(0.5));
        assert!(report.queries_per_second() > 0.0);
        assert_eq!(report.outcomes.len(), 4);
        // A single-shard batch is perfectly (trivially) balanced.
        assert_eq!(report.shard_balance(), 1.0);
    }

    #[test]
    fn planned_batch_select_and_bounded_submit_match_plain_runs() {
        with_watchdog(
            std::time::Duration::from_secs(30),
            "planned batch seams",
            || {
                let (points, order) = small_engine();
                let base = EngineConfig {
                    records_per_page: 4,
                    fanout: 4,
                    buffer_pages: 8,
                    ..Default::default()
                };
                let qs = queries();
                let reference = ServeEngine::new(&points, &order, base)
                    .run(&qs)
                    .expect("no replay panic");
                for (shards, threads) in [(1usize, 1usize), (2, 2), (4, 2)] {
                    let cfg = EngineConfig {
                        shards,
                        threads,
                        ..base
                    };
                    let engine = ServeEngine::new(&points, &order, cfg);
                    // plan → submit_planned is submit.
                    let planned = engine.plan_batch(&qs);
                    assert_eq!(planned.len(), qs.len());
                    assert!(!planned.is_empty());
                    // Every page-touching query exposes its shard loads.
                    for (qidx, outcome) in reference.outcomes.iter().enumerate() {
                        let loads = planned.shard_loads(qidx);
                        let pages: usize = loads.iter().map(|&(_, p, _)| p).sum();
                        assert_eq!(pages, outcome.pages, "query {qidx}");
                        assert!(loads.windows(2).all(|w| w[0].0 < w[1].0));
                    }
                    let report = engine
                        .submit_planned(planned)
                        .wait()
                        .expect("no replay panic");
                    assert_eq!(report.digest, reference.digest);
                    // A tight bound admits the same work, just gated.
                    let bounded = engine
                        .submit_planned_bounded(engine.plan_batch(&qs), 1)
                        .wait()
                        .expect("no replay panic");
                    assert_eq!(bounded.digest, reference.digest);
                    // Queues fully drained afterwards.
                    assert!(engine.queue_depths().iter().all(|&d| d == 0));
                    // Selecting a prefix equals running the prefix alone.
                    let keep: Vec<bool> = (0..qs.len()).map(|i| i < 2).collect();
                    let selected = engine.plan_batch(&qs).select(&keep);
                    assert_eq!(selected.len(), 2);
                    let sub = engine
                        .submit_planned(selected)
                        .wait()
                        .expect("no replay panic");
                    assert_eq!(
                        sub.digest,
                        engine.run(&qs[..2]).expect("no replay panic").digest
                    );
                }
            },
        );
    }

    #[test]
    fn bounded_submits_backpressure_concurrent_batches() {
        // Many single-query batches through a depth-1 bound on a pooled
        // engine: every submission may block until the runner drains, and
        // all of them must still complete with the reference outcomes.
        with_watchdog(
            std::time::Duration::from_secs(30),
            "bounded backpressure",
            || {
                let (points, order) = small_engine();
                let base = EngineConfig {
                    records_per_page: 4,
                    fanout: 4,
                    buffer_pages: 8,
                    ..Default::default()
                };
                let qs: Vec<Query> = (0..4).flat_map(|_| queries()).collect();
                let reference = ServeEngine::new(&points, &order, base)
                    .run(&qs)
                    .expect("no replay panic");
                let cfg = EngineConfig {
                    shards: 2,
                    threads: 2,
                    ..base
                };
                let engine = ServeEngine::new(&points, &order, cfg);
                let handles: Vec<BatchHandle> = qs
                    .chunks(1)
                    .map(|c| engine.submit_planned_bounded(engine.plan_batch(c), 1))
                    .collect();
                let outcomes: Vec<QueryOutcome> = handles
                    .into_iter()
                    .flat_map(|h| h.wait().expect("no replay panic").outcomes)
                    .collect();
                assert_eq!(digest_outcomes(&outcomes), reference.digest);
                assert!(engine.queue_depths().iter().all(|&d| d == 0));
            },
        );
    }

    #[test]
    fn latency_summary_sorts_once_and_supports_p999() {
        let s = LatencySummary::new(vec![3.0, 1.0, 2.0, 4.0]);
        assert_eq!(s.len(), 4);
        assert!(!s.is_empty());
        assert_eq!(s.quantile(0.5), 2.0);
        assert_eq!(s.quantile(0.0), 1.0);
        assert_eq!(s.quantile(1.0), 4.0);
        assert_eq!(s.max(), 4.0);
        // Nearest rank: p99 and p999 of a 4-sample set are the maximum —
        // real observations, never interpolations.
        let (p50, p99, p999) = s.p50_p99_p999();
        assert_eq!((p50, p99, p999), (2.0, 4.0, 4.0));
        assert!(p999 >= p99 && p99 >= p50);
        assert_eq!(s.violations(2.5), (2, 0.5));
        assert_eq!(s.violations(4.0), (0, 0.0));
        let empty = LatencySummary::default();
        assert!(empty.is_empty());
        assert_eq!(empty.quantile(0.999), 0.0);
        assert_eq!(empty.violations(1.0), (0, 0.0));
        assert_eq!(empty.max(), 0.0);
    }

    #[test]
    fn transient_faults_recover_inside_the_retry_budget() {
        // `flaky:0@1+2`: unit 1 on shard 0 fails its first 2 attempts and
        // succeeds on the 3rd (max_attempts = 3). Nothing degrades, the
        // digest matches a clean run bitwise, and the affected query pays
        // its retries as fault latency.
        let (points, order) = small_engine();
        let cfg = EngineConfig {
            records_per_page: 4,
            fanout: 4,
            shards: 2,
            threads: 2,
            ..Default::default()
        };
        let clean = ServeEngine::new(&points, &order, cfg)
            .run(&queries())
            .expect("no replay panic");
        let engine = ServeEngine::new(&points, &order, cfg);
        engine.inject_faults(FaultPlan::parse("flaky:0@1+2").unwrap());
        let report = engine.run(&queries()).expect("no replay panic");
        assert!(report.coverage.is_clean());
        assert_eq!(report.digest, clean.digest);
        assert_eq!(report.degraded_digest(), report.digest);
        let paid: f64 = report.outcomes.iter().map(|o| o.fault_us).sum();
        assert!(paid > 0.0, "retries must cost simulated time");
        assert_eq!(engine.epoch(), 0, "no trip, no swap");
    }

    #[test]
    fn permanent_kill_trips_the_breaker_and_swaps_epochs() {
        with_watchdog(std::time::Duration::from_secs(30), "permanent kill", || {
            let (points, order) = small_engine();
            let cfg = EngineConfig {
                records_per_page: 4,
                fanout: 4,
                shards: 2,
                threads: 2,
                ..Default::default()
            };
            let clean = ServeEngine::new(&points, &order, cfg)
                .run(&queries())
                .expect("no replay panic");
            let engine = ServeEngine::new(&points, &order, cfg);
            // Shard 0 dead from unit 0, across every incarnation.
            engine.inject_faults(FaultPlan::parse("kill!:0@0").unwrap());
            // Enough traffic to pass the breaker threshold on shard 0.
            let qs: Vec<Query> = (0..4).flat_map(|_| queries()).collect();
            let report = engine.run(&qs).expect("injected faults degrade, not error");
            // Shard-0 units degrade with named rank-ranges; shard-1 units
            // are still served and bitwise identical to the clean run.
            assert!(!report.coverage.is_clean());
            assert!(report
                .coverage
                .degraded_units
                .iter()
                .all(|d| d.shard == 0 && !d.rank_ranges.is_empty()));
            for (got, want) in report.outcomes.iter().zip(clean.outcomes.iter().cycle()) {
                if got.degraded_pages == 0 {
                    assert_eq!(got.results, want.results);
                }
            }
            let snap = engine.health_snapshot();
            assert!(snap[0].trips >= 1, "{snap:?}");
            assert_eq!(snap[1].trips, 0);
            // The rebuild lands at the next admission boundary.
            let again = engine.run(&queries()).expect("still serving");
            assert!(engine.epoch() >= 1, "trip must swap epochs");
            // Permanent kill spans incarnations: shard 0 stays degraded,
            // shard 1 keeps serving.
            assert!(again.coverage.degraded_units.iter().all(|d| d.shard == 0));
        });
    }

    #[test]
    fn incarnation_pinned_kill_heals_after_failover() {
        with_watchdog(std::time::Duration::from_secs(30), "pinned kill", || {
            let (points, order) = small_engine();
            let cfg = EngineConfig {
                records_per_page: 4,
                fanout: 4,
                shards: 2,
                threads: 2,
                ..Default::default()
            };
            let engine = ServeEngine::new(&points, &order, cfg);
            // `kill:` (no `!`) pins the fault to incarnation 0: the
            // rebuilt slice escapes it.
            engine.inject_faults(FaultPlan::parse("kill:0@0").unwrap());
            let qs: Vec<Query> = (0..4).flat_map(|_| queries()).collect();
            let first = engine.run(&qs).expect("degrades, not errors");
            assert!(!first.coverage.is_clean());
            assert!(engine.health_snapshot()[0].trips >= 1);
            // After the swap, the breaker's probe hits the healthy
            // incarnation, closes, and coverage comes back clean. The
            // open breaker fast-fails a few cooldown units first, so
            // drive enough traffic through.
            let mut healed = false;
            for _ in 0..4 {
                let r = engine.run(&qs).expect("still serving");
                if r.coverage.is_clean() {
                    healed = true;
                    break;
                }
            }
            assert!(healed, "pinned fault must heal after failover");
            assert!(engine.epoch() >= 1);
            let snap = engine.health_snapshot();
            assert_eq!(snap[0].incarnation, 1);
        });
    }

    #[test]
    fn degraded_digest_is_schedule_invariant() {
        // The same fault plan over 1, 2 and 4 threads (and repeat runs)
        // must produce identical coverage and degraded digests — faults
        // are decided on the admission clock, not by runner scheduling.
        let (points, order) = small_engine();
        let qs: Vec<Query> = (0..4).flat_map(|_| queries()).collect();
        let mut baseline: Option<(u64, Vec<DegradedUnit>)> = None;
        for threads in [1usize, 2, 4, 2] {
            let cfg = EngineConfig {
                records_per_page: 4,
                fanout: 4,
                shards: 2,
                threads,
                ..Default::default()
            };
            let engine = ServeEngine::new(&points, &order, cfg);
            engine.inject_faults(FaultPlan::parse("kill!:0@2,stall:1@0+2=50").unwrap());
            let report = engine.run(&qs).expect("degrades, not errors");
            let digest = report.degraded_digest();
            match &baseline {
                None => baseline = Some((digest, report.coverage.degraded_units.clone())),
                Some((d, units)) => {
                    assert_eq!(digest, *d, "threads={threads}");
                    assert_eq!(&report.coverage.degraded_units, units, "threads={threads}");
                }
            }
        }
    }

    #[test]
    fn open_breaker_fast_fails_without_touching_the_shard() {
        // With a dead shard and plenty of traffic, the breaker opens and
        // later shard-0 units are fast-failed: degraded with zero fault
        // latency (the failure was paid for by the units that tripped it).
        let (points, order) = small_engine();
        let cfg = EngineConfig {
            records_per_page: 4,
            fanout: 4,
            shards: 2,
            threads: 1,
            ..Default::default()
        };
        let engine = ServeEngine::new(&points, &order, cfg);
        engine.inject_faults(FaultPlan::parse("kill!:0@0").unwrap());
        let qs: Vec<Query> = (0..8).flat_map(|_| queries()).collect();
        let report = engine.run(&qs).expect("degrades, not errors");
        let degraded: Vec<&QueryOutcome> = report
            .outcomes
            .iter()
            .filter(|o| o.degraded_pages > 0)
            .collect();
        assert!(degraded.len() > engine.config().recovery.breaker_threshold as usize);
        assert!(
            degraded.iter().any(|o| o.fault_us == 0.0),
            "some degraded unit must have been fast-failed"
        );
        assert!(
            degraded.iter().any(|o| o.fault_us > 0.0),
            "the tripping units paid the retry budget"
        );
    }

    #[test]
    fn planner_parse_and_display() {
        assert_eq!(KnnPlanner::parse("best-first"), Some(KnnPlanner::BestFirst));
        assert_eq!(KnnPlanner::parse("BF"), Some(KnnPlanner::BestFirst));
        assert_eq!(
            KnnPlanner::parse("expanding-ball"),
            Some(KnnPlanner::ExpandingBall)
        );
        assert_eq!(KnnPlanner::parse("Ball"), Some(KnnPlanner::ExpandingBall));
        assert_eq!(KnnPlanner::parse("dijkstra"), None);
        assert_eq!(KnnPlanner::BestFirst.to_string(), "best-first");
        assert_eq!(KnnPlanner::ExpandingBall.to_string(), "expanding-ball");
    }
}
