//! The batch query executor: plan → route → replay → merge.
//!
//! [`ServeEngine`] turns the reproduction's artifacts — a
//! [`LinearOrder`], the [`PageMapper`] placing it on pages, a
//! [`PackedRTree`] over the same order, and a fleet of [`Shard`]s — into
//! a concurrent query engine for batches of range and k-nearest-neighbour
//! queries. A batch flows through four phases:
//!
//! 1. **Plan** (inline): each query runs against the packed R-tree.
//!    Range queries use [`PackedRTree::range_query_ordered`], so result
//!    ranks — and the page ids derived from them — are monotone; kNN
//!    probes expand a Chebyshev ball until `k` matches are guaranteed.
//! 2. **Route** (inline): result ids become per-query page lists and
//!    per-shard slices — a pure pass of integer divisions over the
//!    order's borrowed ranks and the [`ShardMap`], far cheaper than
//!    shipping ids to the pool.
//! 3. **Replay** (pooled): one task per shard replays that shard's
//!    queries **in batch order** against its private LRU pool and store
//!    slice, producing hit/miss accounting.
//! 4. **Merge** (inline): per-query outcomes are reassembled in query
//!    order and folded into a digest plus per-shard aggregates.
//!
//! **Determinism.** Every phase is either a pure per-query function or a
//! per-shard sequential replay in a fixed order, so the report's result
//! sets, page/run counts and digest are bitwise identical for every
//! thread count *and* shard count (per-shard buffer statistics are the
//! one shard-count-dependent quantity: S LRU pools are not one big pool).
//! The thread count only changes wall-clock time.

use crate::pool::WorkerPool;
use crate::shard::{Partition, Shard, ShardMap};
use slpm_storage::{
    BufferStats, IoCost, IoModel, Mbr, PackedRTree, PageLayout, PageMapper, QueryCost,
};
use spectral_lpm::LinearOrder;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// One query of a batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Query {
    /// All points inside an axis-aligned box (inclusive).
    Range(Mbr),
    /// The `k` nearest points to `center` under the Chebyshev (L∞)
    /// metric, ties broken by point id.
    Knn {
        /// Query point.
        center: Vec<i64>,
        /// Number of neighbours.
        k: usize,
    },
}

/// Engine geometry and scheduling knobs.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Records per page (page size in records).
    pub records_per_page: usize,
    /// Bytes per record payload.
    pub record_size: usize,
    /// R-tree leaf fanout (defaults to one leaf per page).
    pub fanout: usize,
    /// Number of shards the pages are partitioned over.
    pub shards: usize,
    /// Worker threads; `1` executes every phase inline (serial baseline).
    pub threads: usize,
    /// Page → shard placement policy.
    pub partition: Partition,
    /// LRU frames per shard's buffer pool.
    pub buffer_pages: usize,
    /// Seek/transfer model for the per-query I/O cost estimate.
    pub io: IoModel,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            records_per_page: 64,
            record_size: 64,
            fanout: 64,
            shards: 1,
            threads: 1,
            partition: Partition::Contiguous,
            buffer_pages: 64,
            io: IoModel::default(),
        }
    }
}

/// Outcome of one query of a batch.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryOutcome {
    /// Matching point ids — ranges in linear-order (rank) sequence, kNN
    /// by ascending (Chebyshev distance, id).
    pub results: Vec<usize>,
    /// Distinct pages the query touched.
    pub pages: usize,
    /// Maximal runs of consecutive page ids (sequential reads).
    pub runs: usize,
    /// Pages served from some shard's buffer pool.
    pub hits: usize,
    /// Pages read from backing storage.
    pub misses: usize,
    /// Seek/transfer cost estimate for this query.
    pub io: IoCost,
    /// R-tree node accounting (cumulative over kNN expansions).
    pub tree: QueryCost,
}

/// Per-shard aggregates over one batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardReport {
    /// Shard id.
    pub shard: usize,
    /// Queries that touched this shard.
    pub queries: usize,
    /// Page requests routed here (hits + misses).
    pub pages_routed: usize,
    /// Sequential runs within this shard's slices.
    pub runs: usize,
    /// Buffer accounting for this batch.
    pub buffer: BufferStats,
}

/// The merged result of one batch.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// Per-query outcomes, in submission order.
    pub outcomes: Vec<QueryOutcome>,
    /// Per-shard aggregates (every shard, including idle ones).
    pub shards: Vec<ShardReport>,
    /// Wall-clock seconds for the batch (plan through merge).
    pub elapsed_seconds: f64,
    /// Order-sensitive FNV-1a digest of (query index, result ids, page
    /// count, run count) — bitwise identical across shard and thread
    /// counts for the same order and workload.
    pub digest: u64,
}

impl BatchReport {
    /// Total matching points across the batch.
    pub fn total_results(&self) -> usize {
        self.outcomes.iter().map(|o| o.results.len()).sum()
    }

    /// Total distinct-page touches across the batch.
    pub fn total_pages(&self) -> usize {
        self.outcomes.iter().map(|o| o.pages).sum()
    }

    /// Pages read from backing storage (buffer misses).
    pub fn total_misses(&self) -> usize {
        self.outcomes.iter().map(|o| o.misses).sum()
    }

    /// Fleet-wide buffer statistics (per-shard pools merged).
    pub fn buffer_stats(&self) -> BufferStats {
        let mut total = BufferStats::default();
        for s in &self.shards {
            total.merge(&s.buffer);
        }
        total
    }

    /// Batch throughput in queries per second.
    pub fn queries_per_second(&self) -> f64 {
        if self.elapsed_seconds > 0.0 {
            self.outcomes.len() as f64 / self.elapsed_seconds
        } else {
            0.0
        }
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) of per-query page counts.
    pub fn page_quantile(&self, q: f64) -> usize {
        let mut pages: Vec<usize> = self.outcomes.iter().map(|o| o.pages).collect();
        pages.sort_unstable();
        quantile(&pages, q)
    }
}

/// Nearest-rank quantile of an ascending sample (0 on an empty batch).
fn quantile(sorted: &[usize], q: f64) -> usize {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (q.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

/// FNV-1a over a word stream.
fn fnv1a64(hash: &mut u64, word: u64) {
    *hash ^= word;
    *hash = hash.wrapping_mul(0x100_0000_01b3);
}

/// A planned query: its result ids plus tree accounting.
struct Plan {
    results: Vec<usize>,
    /// Ranges: results are already in rank order; kNN results are in
    /// (distance, id) order and need a sort on the page side.
    rank_ordered: bool,
    tree: QueryCost,
}

/// One query's page list routed to one shard.
struct ShardSlice {
    shard: usize,
    pages: Vec<usize>,
    runs: usize,
}

/// A routed query: global page profile plus per-shard slices.
struct Route {
    pages: usize,
    runs: usize,
    slices: Vec<ShardSlice>,
}

/// The sharded, batched query engine.
///
/// Borrows the point set and order (the caller keeps ownership, exactly
/// like [`PackedRTree::pack`]); owns the shards and the worker pool, so
/// buffer pools stay warm across batches.
pub struct ServeEngine<'a> {
    points: &'a [Vec<i64>],
    order: &'a LinearOrder,
    rtree: PackedRTree<'a>,
    bounds: Mbr,
    layout: PageLayout,
    shard_map: ShardMap,
    shards: Arc<Vec<Mutex<Shard>>>,
    /// `None` when `threads == 1`: the serial baseline runs inline.
    pool: Option<WorkerPool>,
    cfg: EngineConfig,
}

impl<'a> ServeEngine<'a> {
    /// Build an engine over `points` laid out by `order`.
    ///
    /// # Panics
    /// Panics when `points` is empty or its length differs from the
    /// order's (caller bugs), or on zero geometry knobs.
    pub fn new(points: &'a [Vec<i64>], order: &'a LinearOrder, cfg: EngineConfig) -> Self {
        assert_eq!(points.len(), order.len(), "order/point-set mismatch");
        let layout = PageLayout::new(cfg.records_per_page);
        let mapper = PageMapper::new(order, layout);
        let shard_map = ShardMap::new(cfg.shards, mapper.num_pages(), cfg.partition);
        // One placement shared by the whole fleet (the store-side analogue
        // of the rank-borrowing PageMapper — no per-shard dense copies).
        let placement = slpm_storage::PageStore::placement_of(&mapper);
        let shards: Vec<Mutex<Shard>> = (0..cfg.shards)
            .map(|id| {
                Mutex::new(Shard::build(
                    id,
                    &shard_map,
                    &mapper,
                    Arc::clone(&placement),
                    cfg.record_size,
                    cfg.buffer_pages,
                ))
            })
            .collect();
        let bounds = Mbr::of_points(points.iter().map(|p| p.as_slice()));
        ServeEngine {
            points,
            order,
            rtree: PackedRTree::pack(points, order, cfg.fanout.max(2)),
            bounds,
            layout,
            shard_map,
            shards: Arc::new(shards),
            pool: (cfg.threads > 1).then(|| WorkerPool::new(cfg.threads)),
            cfg,
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// The linear order being served.
    pub fn order(&self) -> &LinearOrder {
        self.order
    }

    /// The page → shard assignment.
    pub fn shard_map(&self) -> &ShardMap {
        &self.shard_map
    }

    /// Total pages of the underlying store.
    pub fn num_pages(&self) -> usize {
        self.shard_map.num_pages()
    }

    /// Execute a batch; per-query outcomes come back in submission order.
    pub fn run(&self, queries: &[Query]) -> BatchReport {
        let start = Instant::now();
        // Phase 1 — plan against the R-tree (borrows, so inline).
        let plans: Vec<Plan> = queries.iter().map(|q| self.plan(q)).collect();

        // Phase 2 — route: result ids → page lists → shard slices. A pure
        // per-query pass of integer divisions over the borrowed rank
        // array; orders of magnitude cheaper than planning or replay, so
        // it runs inline (copying ids into 'static pool tasks would cost
        // more than the routing itself).
        let rpp = self.layout.records_per_page;
        let shard_map = self.shard_map;
        let routes: Vec<Route> = plans
            .iter()
            .map(|p| {
                route_query(
                    &p.results,
                    p.rank_ordered,
                    self.order.ranks(),
                    rpp,
                    &shard_map,
                )
            })
            .collect();

        // Phase 3 — replay: per-shard page reads, one task per shard, the
        // shard's queries in batch order.
        let mut per_shard: Vec<Vec<(usize, Vec<usize>)>> = vec![Vec::new(); self.cfg.shards];
        for (qidx, route) in routes.iter().enumerate() {
            for slice in &route.slices {
                per_shard[slice.shard].push((qidx, slice.pages.clone()));
            }
        }
        let shard_outcomes: Vec<ShardOutcome> = match &self.pool {
            Some(pool) => {
                let tasks: Vec<_> = per_shard
                    .iter_mut()
                    .enumerate()
                    .map(|(shard_id, work)| {
                        let work = std::mem::take(work);
                        let shards = Arc::clone(&self.shards);
                        move || replay_shard(shard_id, work, shards.as_slice())
                    })
                    .collect();
                pool.run_batch(tasks)
            }
            None => per_shard
                .into_iter()
                .enumerate()
                .map(|(shard_id, work)| replay_shard(shard_id, work, self.shards.as_slice()))
                .collect(),
        };

        // Phase 4 — merge in query order.
        let mut hits = vec![0usize; queries.len()];
        let mut misses = vec![0usize; queries.len()];
        let mut shard_reports: Vec<ShardReport> = (0..self.cfg.shards)
            .map(|shard| ShardReport {
                shard,
                queries: 0,
                pages_routed: 0,
                runs: 0,
                buffer: BufferStats::default(),
            })
            .collect();
        for (shard_id, rows, delta) in shard_outcomes {
            let report = &mut shard_reports[shard_id];
            report.queries = rows.len();
            report.buffer = delta;
            for (qidx, h, m) in rows {
                hits[qidx] += h;
                misses[qidx] += m;
                report.pages_routed += h + m;
            }
        }
        for route in &routes {
            for slice in &route.slices {
                shard_reports[slice.shard].runs += slice.runs;
            }
        }
        let mut digest = 0xcbf2_9ce4_8422_2325u64;
        let outcomes: Vec<QueryOutcome> = plans
            .into_iter()
            .zip(routes)
            .enumerate()
            .map(|(qidx, (plan, route))| {
                fnv1a64(&mut digest, qidx as u64);
                fnv1a64(&mut digest, plan.results.len() as u64);
                for &id in &plan.results {
                    fnv1a64(&mut digest, id as u64);
                }
                fnv1a64(&mut digest, route.pages as u64);
                fnv1a64(&mut digest, route.runs as u64);
                QueryOutcome {
                    results: plan.results,
                    pages: route.pages,
                    runs: route.runs,
                    hits: hits[qidx],
                    misses: misses[qidx],
                    io: IoCost {
                        pages: route.pages,
                        runs: route.runs,
                        total: route.runs as f64 * self.cfg.io.seek_cost
                            + route.pages as f64 * self.cfg.io.transfer_cost,
                    },
                    tree: plan.tree,
                }
            })
            .collect();
        BatchReport {
            outcomes,
            shards: shard_reports,
            elapsed_seconds: start.elapsed().as_secs_f64(),
            digest,
        }
    }

    /// Plan one query against the R-tree.
    fn plan(&self, query: &Query) -> Plan {
        match query {
            Query::Range(mbr) => {
                let (results, tree) = self.rtree.range_query_ordered(mbr);
                Plan {
                    results,
                    rank_ordered: true,
                    tree,
                }
            }
            Query::Knn { center, k } => {
                let (results, tree) = self.knn(center, *k);
                Plan {
                    results,
                    rank_ordered: false,
                    tree,
                }
            }
        }
    }

    /// Exact k-nearest-neighbour search under the Chebyshev (L∞) metric:
    /// grow a box of radius `r` around the centre (doubling) until it
    /// holds ≥ `k` points or covers the data bounds — under L∞ the box of
    /// radius `r` *is* the metric ball, so once `k` candidates are inside
    /// the `k` nearest are among them. Node costs accumulate over the
    /// expansion rounds (re-visits are genuinely re-paid, as an iterative
    /// server would).
    fn knn(&self, center: &[i64], k: usize) -> (Vec<usize>, QueryCost) {
        let mut tree = QueryCost {
            nodes_visited: 0,
            leaves_visited: 0,
            results: 0,
        };
        let k = k.min(self.points.len());
        if k == 0 {
            return (Vec::new(), tree);
        }
        let mut radius: i64 = 1;
        loop {
            let query = Mbr {
                lo: center.iter().map(|&c| c - radius).collect(),
                hi: center.iter().map(|&c| c + radius).collect(),
            };
            let (ids, cost) = self.rtree.range_query_ordered(&query);
            tree.nodes_visited += cost.nodes_visited;
            tree.leaves_visited += cost.leaves_visited;
            let covers_all = query.lo.iter().zip(&self.bounds.lo).all(|(q, b)| q <= b)
                && query.hi.iter().zip(&self.bounds.hi).all(|(q, b)| q >= b);
            if ids.len() >= k || covers_all {
                let mut scored: Vec<(i64, usize)> = ids
                    .into_iter()
                    .map(|id| (chebyshev(center, &self.points[id]), id))
                    .collect();
                scored.sort_unstable();
                scored.truncate(k);
                let results: Vec<usize> = scored.into_iter().map(|(_, id)| id).collect();
                tree.results = results.len();
                return (results, tree);
            }
            radius *= 2;
        }
    }
}

/// One shard's replay result: `(shard, per-query (query index, hits,
/// misses), buffer-stat delta for this batch)`.
type ShardOutcome = (usize, Vec<(usize, usize, usize)>, BufferStats);

/// Replay one shard's share of a batch, in batch order. The shard lock is
/// held for the whole replay: within a batch exactly one task touches a
/// shard, so the lock is uncontended and the LRU state evolves in a fixed
/// sequence for every thread count.
fn replay_shard(
    shard_id: usize,
    work: Vec<(usize, Vec<usize>)>,
    shards: &[Mutex<Shard>],
) -> ShardOutcome {
    let mut shard = shards[shard_id].lock().expect("shard lock");
    let before = shard.buffer_stats();
    let mut rows = Vec::with_capacity(work.len());
    for (qidx, pages) in work {
        let (h, m) = shard.replay(&pages);
        rows.push((qidx, h, m));
    }
    let after = shard.buffer_stats();
    let delta = BufferStats {
        hits: after.hits - before.hits,
        misses: after.misses - before.misses,
        evictions: after.evictions - before.evictions,
    };
    (shard_id, rows, delta)
}

/// Chebyshev (L∞) distance between two points.
fn chebyshev(a: &[i64], b: &[i64]) -> i64 {
    a.iter()
        .zip(b.iter())
        .map(|(&x, &y)| (x - y).abs())
        .max()
        .unwrap_or(0)
}

/// Route one query's result ids to pages and shard slices — a pure
/// function of the rank array, page size and shard map.
fn route_query(
    ids: &[usize],
    rank_ordered: bool,
    ranks: &[usize],
    records_per_page: usize,
    shard_map: &ShardMap,
) -> Route {
    let mut pages: Vec<usize> = ids.iter().map(|&id| ranks[id] / records_per_page).collect();
    if !rank_ordered {
        pages.sort_unstable();
    }
    pages.dedup();
    let runs = count_runs(&pages);
    let mut slices: Vec<ShardSlice> = Vec::new();
    for &page in &pages {
        let shard = shard_map.shard_of(page);
        match slices.iter_mut().find(|s| s.shard == shard) {
            Some(slice) => slice.pages.push(page),
            None => slices.push(ShardSlice {
                shard,
                pages: vec![page],
                runs: 0,
            }),
        }
    }
    // Deterministic shard visit order (slices appear in first-touch order
    // above; normalise to ascending shard id) and per-slice run counts.
    slices.sort_by_key(|s| s.shard);
    for slice in &mut slices {
        slice.runs = count_runs(&slice.pages);
    }
    Route {
        pages: pages.len(),
        runs,
        slices,
    }
}

/// Maximal runs of consecutive ids in an ascending list.
fn count_runs(pages: &[usize]) -> usize {
    let mut runs = 0;
    let mut prev: Option<usize> = None;
    for &p in pages {
        if prev != Some(p.wrapping_sub(1)) {
            runs += 1;
        }
        prev = Some(p);
    }
    runs
}

#[cfg(test)]
mod tests {
    use super::*;
    use slpm_graph::grid::GridSpec;

    use crate::workload::grid_points;

    fn small_engine() -> (Vec<Vec<i64>>, LinearOrder) {
        let spec = GridSpec::cube(8, 2);
        (grid_points(&spec), LinearOrder::identity(64))
    }

    fn queries() -> Vec<Query> {
        vec![
            Query::Range(Mbr {
                lo: vec![1, 1],
                hi: vec![3, 4],
            }),
            Query::Knn {
                center: vec![4, 4],
                k: 5,
            },
            Query::Range(Mbr {
                lo: vec![0, 0],
                hi: vec![7, 7],
            }),
            Query::Range(Mbr {
                lo: vec![20, 20],
                hi: vec![30, 30],
            }),
        ]
    }

    #[test]
    fn range_results_match_brute_force() {
        let (points, order) = small_engine();
        let cfg = EngineConfig {
            records_per_page: 4,
            fanout: 4,
            ..Default::default()
        };
        let engine = ServeEngine::new(&points, &order, cfg);
        let report = engine.run(&queries());
        let q0 = Mbr {
            lo: vec![1, 1],
            hi: vec![3, 4],
        };
        let mut got = report.outcomes[0].results.clone();
        got.sort_unstable();
        let want: Vec<usize> = (0..points.len())
            .filter(|&i| q0.contains_point(&points[i]))
            .collect();
        assert_eq!(got, want);
        // Range results stream in rank order.
        for w in report.outcomes[0].results.windows(2) {
            assert!(order.rank_of(w[0]) < order.rank_of(w[1]));
        }
        // Whole-grid query returns everything; empty box returns nothing.
        assert_eq!(report.outcomes[2].results.len(), 64);
        assert!(report.outcomes[3].results.is_empty());
        assert_eq!(report.outcomes[3].pages, 0);
    }

    #[test]
    fn knn_results_match_brute_force() {
        let (points, order) = small_engine();
        let cfg = EngineConfig {
            records_per_page: 4,
            fanout: 4,
            ..Default::default()
        };
        let engine = ServeEngine::new(&points, &order, cfg);
        for (center, k) in [(vec![4i64, 4], 5usize), (vec![0, 0], 3), (vec![7, 7], 64)] {
            let report = engine.run(&[Query::Knn {
                center: center.clone(),
                k,
            }]);
            let got = &report.outcomes[0].results;
            let mut want: Vec<(i64, usize)> = (0..points.len())
                .map(|i| (chebyshev(&center, &points[i]), i))
                .collect();
            want.sort_unstable();
            let want: Vec<usize> = want.into_iter().take(k).map(|(_, id)| id).collect();
            assert_eq!(got, &want, "center {center:?} k {k}");
        }
        // k larger than the point set clamps.
        let report = engine.run(&[Query::Knn {
            center: vec![3, 3],
            k: 1000,
        }]);
        assert_eq!(report.outcomes[0].results.len(), 64);
    }

    #[test]
    fn digest_and_outcomes_invariant_across_shards_and_threads() {
        let (points, order) = small_engine();
        let base = EngineConfig {
            records_per_page: 4,
            fanout: 4,
            buffer_pages: 4,
            ..Default::default()
        };
        let qs = queries();
        let reference = ServeEngine::new(&points, &order, base).run(&qs);
        for shards in [1usize, 2, 4] {
            for threads in [1usize, 2, 4] {
                for partition in [Partition::Contiguous, Partition::RoundRobin] {
                    let cfg = EngineConfig {
                        shards,
                        threads,
                        partition,
                        ..base
                    };
                    let engine = ServeEngine::new(&points, &order, cfg);
                    let report = engine.run(&qs);
                    assert_eq!(
                        report.digest, reference.digest,
                        "digest diverged at S={shards} T={threads} {partition}"
                    );
                    for (a, b) in report.outcomes.iter().zip(&reference.outcomes) {
                        assert_eq!(a.results, b.results);
                        assert_eq!(a.pages, b.pages);
                        assert_eq!(a.runs, b.runs);
                    }
                }
            }
        }
    }

    #[test]
    fn page_reads_match_unsharded_store_accounting() {
        // Total distinct-page touches must equal what PageStore::serve_query
        // would read per query on the full store.
        let (points, order) = small_engine();
        let cfg = EngineConfig {
            records_per_page: 4,
            fanout: 4,
            shards: 2,
            ..Default::default()
        };
        let engine = ServeEngine::new(&points, &order, cfg);
        let report = engine.run(&queries());
        let layout = PageLayout::new(4);
        let mapper = PageMapper::new(&order, layout);
        let store = slpm_storage::PageStore::build(&mapper, order.len(), 8);
        for (q, outcome) in queries().iter().zip(&report.outcomes) {
            let sorted_ids = {
                let mut ids = outcome.results.clone();
                ids.sort_unstable();
                ids
            };
            let direct = store.serve_query(sorted_ids.iter().copied());
            assert_eq!(outcome.pages, direct, "query {q:?}");
        }
    }

    #[test]
    fn buffer_reuse_across_batches_warms_up() {
        let (points, order) = small_engine();
        let cfg = EngineConfig {
            records_per_page: 4,
            fanout: 4,
            buffer_pages: 32,
            ..Default::default()
        };
        let engine = ServeEngine::new(&points, &order, cfg);
        let qs = queries();
        let cold = engine.run(&qs);
        let warm = engine.run(&qs);
        assert!(warm.buffer_stats().hits >= cold.buffer_stats().hits);
        // Second identical batch with a big enough pool: everything hits.
        assert_eq!(warm.total_misses(), 0);
        assert_eq!(warm.digest, cold.digest);
    }

    #[test]
    fn shard_reports_cover_routed_pages() {
        let (points, order) = small_engine();
        let cfg = EngineConfig {
            records_per_page: 4,
            fanout: 4,
            shards: 4,
            partition: Partition::RoundRobin,
            ..Default::default()
        };
        let engine = ServeEngine::new(&points, &order, cfg);
        let report = engine.run(&queries());
        let routed: usize = report.shards.iter().map(|s| s.pages_routed).sum();
        assert_eq!(routed, report.total_pages());
        let hits_misses: usize = report.outcomes.iter().map(|o| o.hits + o.misses).sum();
        assert_eq!(routed, hits_misses);
        // Round-robin spreads the whole-grid query across all shards.
        assert!(report.shards.iter().all(|s| s.queries >= 1));
    }

    #[test]
    fn quantiles_and_throughput_helpers() {
        assert_eq!(quantile(&[], 0.5), 0);
        assert_eq!(quantile(&[7], 0.5), 7);
        assert_eq!(quantile(&[1, 2, 3, 4], 0.5), 2);
        assert_eq!(quantile(&[1, 2, 3, 4], 0.99), 4);
        assert_eq!(quantile(&[1, 2, 3, 4], 0.0), 1);
        let (points, order) = small_engine();
        let engine = ServeEngine::new(
            &points,
            &order,
            EngineConfig {
                records_per_page: 4,
                fanout: 4,
                ..Default::default()
            },
        );
        let report = engine.run(&queries());
        assert!(report.page_quantile(0.99) >= report.page_quantile(0.5));
        assert!(report.queries_per_second() > 0.0);
        assert_eq!(report.outcomes.len(), 4);
    }
}
