//! `slpm_serve` — the sharded, batched query-serving engine.
//!
//! The paper's point is that a spectral linear order makes *query
//! serving* cheap: range and nearest-neighbour queries touch few,
//! contiguous pages. This crate is the layer that actually serves those
//! queries at scale, turning the reproduction's artifacts
//! ([`spectral_lpm::LinearOrder`] → [`slpm_storage::PageMapper`] →
//! [`slpm_storage::PackedRTree`] / [`slpm_storage::PageStore`] →
//! [`slpm_storage::BufferPool`]) into a concurrent engine:
//!
//! * [`pool`] — a persistent [`pool::WorkerPool`]: long-lived threads fed
//!   by the `crossbeam` shim's MPMC channels, amortising the per-call
//!   spawn cost that dominates scoped threads below ~64k work items. Via
//!   [`pool::WorkerPool::linalg_pool`] the same workers also run the
//!   eigensolver's chunked kernels (`slpm_linalg::ScopeExecutor`) — one
//!   pool abstraction for compute and serving.
//! * [`shard`] — partitioning one order's pages across shards
//!   ([`shard::Partition::Contiguous`] rank ranges, or the declustered
//!   [`shard::Partition::RoundRobin`] reusing
//!   [`slpm_storage::decluster`]), each shard owning a
//!   [`slpm_storage::PageStore`] slice plus its own LRU buffer pool.
//! * [`engine`] — the batch executor: plan each query on the packed
//!   R-tree (range scans plus a best-first branch-and-bound kNN planner,
//!   [`engine::KnnPlanner`]), admit any number of concurrent batches
//!   through per-shard FIFO queues with round-robin fairness
//!   ([`engine::ServeEngine::submit`] / [`engine::BatchHandle`]), and
//!   merge outcomes in deterministic query order with I/O-cost, buffer,
//!   latency and shard-balance accounting.
//! * [`workload`] — reproducible mixed range/kNN batches built on
//!   [`slpm_querysim::workloads::sample_boxes`], plus hot-spot (Zipf)
//!   batches ([`workload::zipf_workload`]) for skew studies.
//! * [`fault`] / [`health`] — the fault plane and its recovery layer:
//!   seeded, deterministic [`fault::FaultPlan`]s (stalls, transient and
//!   permanent shard failures, replay-unit panics, page-read errors)
//!   stamped at admission and manifested at the replay seam; per-shard
//!   circuit breakers ([`health::BreakerState`]) with bounded
//!   retry/backoff, and failover by rebuilding a tripped shard's slice
//!   under an epoch-swapped [`shard::ShardSet`]. Faulted runs stay
//!   reproducible: fault-free queries are bitwise identical to an
//!   unfaulted run, and degraded coverage has a schedule-invariant
//!   digest.
//! * [`arrival`] — open-loop arrival processes on a simulated clock
//!   (deterministic rate, seeded Poisson, bursty on/off, diurnal ramp),
//!   turning a batch workload into timed offered traffic.
//! * [`stream`] — the streaming admission loop: micro-batch arrivals
//!   under a batching-delay window, shed or block against a bounded
//!   per-shard queue depth ([`stream::AdmissionPolicy`]), execute on the
//!   engine, and account per-query admission-to-completion latency into
//!   an SLO report ([`stream::SloReport`]: p50/p99/p999 vs. target,
//!   violation %, shed counts per class, max queue depth).
//!
//! **The serving contract:** result sets, page counts, run counts and the
//! batch digest are bitwise identical for every shard count, thread
//! count, kNN planner and in-flight batch count — scheduling moves work,
//! never answers.
//!
//! ```
//! use slpm_serve::engine::{EngineConfig, ServeEngine};
//! use slpm_serve::workload::{grid_points, mixed_workload, WorkloadConfig};
//! use slpm_graph::grid::GridSpec;
//! use spectral_lpm::LinearOrder;
//!
//! let spec = GridSpec::cube(16, 2);
//! let points = grid_points(&spec);
//! let order = LinearOrder::identity(points.len());
//! let engine = ServeEngine::new(
//!     &points,
//!     &order,
//!     EngineConfig { shards: 2, threads: 2, ..Default::default() },
//! );
//! let batch = mixed_workload(&spec, &WorkloadConfig { queries: 32, ..Default::default() });
//! let report = engine.run(&batch).expect("no replay unit panicked");
//! assert_eq!(report.outcomes.len(), 32);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arrival;
pub mod engine;
pub mod fault;
pub mod health;
pub mod pool;
pub mod shard;
pub mod stream;
pub mod testing;
pub mod workload;

pub use arrival::{ArrivalConfig, ArrivalShape};
pub use engine::{
    digest_outcomes, digest_with_coverage, BatchHandle, BatchReport, CoverageReport, DegradedUnit,
    EngineConfig, KnnPlanner, LatencySummary, PlannedBatch, Query, QueryOutcome, ServeEngine,
    ShardReport,
};
pub use fault::{Fault, FaultKind, FaultParseError, FaultPlan, ServeError, UnitFailure};
pub use health::{BreakerSnapshot, BreakerState, RecoveryConfig};
pub use pool::WorkerPool;
pub use shard::{Partition, Shard, ShardMap, ShardSet};
pub use stream::{
    stream_serve, AdmissionPolicy, ServiceModel, SloReport, StreamConfig, StreamReport,
};
pub use workload::{
    grid_points, mixed_workload, mixed_workload_labeled, zipf_workload, WorkloadConfig, ZipfConfig,
};
