//! Test-support utilities for the serving stack.
//!
//! The engine's failure-mode tests assert things like "a panicking replay
//! unit surfaces at [`crate::BatchHandle::wait`] instead of hanging the
//! batch". A regression in that path looks like a test that never
//! returns, which a plain `#[test]` turns into a stuck CI job rather
//! than a red one. [`with_watchdog`] bounds such tests: the body runs on
//! a helper thread, and if it misses its deadline the watchdog fails the
//! test with a clear message while the hung thread is left detached.

use std::sync::mpsc;
use std::time::Duration;

/// Run `f` under a deadline: returns its value when it finishes in time,
/// re-raises its panic if it panics, and panics with
/// `watchdog: <name> did not finish within <timeout>` if it hangs.
///
/// The body runs on its own thread so a hang cannot wedge the caller;
/// on timeout that thread is abandoned (detached), which is fine for a
/// test process that is about to fail anyway.
pub fn with_watchdog<R, F>(timeout: Duration, name: &str, f: F) -> R
where
    R: Send + 'static,
    F: FnOnce() -> R + Send + 'static,
{
    let (tx, rx) = mpsc::channel();
    // xtask:allow(thread-spawn): the watchdog must outlive a hung test body
    let worker = std::thread::Builder::new()
        .name(format!("watchdog:{name}"))
        .spawn(move || {
            // A send can only fail if the watchdog already timed out and
            // dropped the receiver; the value is discarded either way.
            let _ = tx.send(f());
        })
        .expect("spawn watchdog worker thread");
    match rx.recv_timeout(timeout) {
        Ok(value) => {
            worker.join().expect("worker already sent its result");
            value
        }
        Err(mpsc::RecvTimeoutError::Timeout) => {
            panic!("watchdog: {name} did not finish within {timeout:?}")
        }
        Err(mpsc::RecvTimeoutError::Disconnected) => match worker.join() {
            // The sender only drops without sending when `f` unwound.
            Ok(()) => unreachable!("worker disconnected without panicking"),
            Err(payload) => std::panic::resume_unwind(payload),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn watchdog_passes_the_value_through() {
        let got = with_watchdog(Duration::from_secs(5), "value", || 7 * 6);
        assert_eq!(got, 42);
    }

    #[test]
    fn watchdog_reraises_the_body_panic() {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // silence expected panics
        let outcome = std::panic::catch_unwind(|| {
            with_watchdog(Duration::from_secs(5), "boom", || panic!("inner failure"))
        });
        std::panic::set_hook(prev);
        let payload = outcome.expect_err("body panic must propagate");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .expect("panic payload is a &str");
        assert_eq!(msg, "inner failure");
    }

    #[test]
    fn watchdog_times_out_a_hung_body() {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // silence expected panics
        let outcome = std::panic::catch_unwind(|| {
            with_watchdog(Duration::from_millis(50), "hang", || {
                std::thread::sleep(Duration::from_secs(60));
            })
        });
        std::panic::set_hook(prev);
        let payload = outcome.expect_err("hung body must trip the watchdog");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .expect("panic payload is a String");
        assert!(
            msg.contains("watchdog: hang did not finish within"),
            "unexpected message: {msg}"
        );
    }
}
