//! Open-loop query-arrival processes on a **simulated clock**.
//!
//! Everything the repo measured before this module was closed-loop: a
//! pre-built batch is handed to the engine and the only observable is
//! throughput. Production traffic is an arrival *process* — queries show
//! up over time whether or not the server has finished the previous
//! ones, and the interesting observable is latency under that load. An
//! [`ArrivalConfig`] turns a shape + rate + seed into the arrival
//! timestamps (in simulated microseconds) of an offered query sequence;
//! [`crate::stream`] drains those arrivals through the engine.
//!
//! All four shapes are pure functions of their configuration — no
//! wall-clock reads anywhere (the xtask `wall-clock` lint guards this
//! crate), so streamed digests and the SLO accounting derived from these
//! timestamps are bitwise reproducible on any machine:
//!
//! * [`ArrivalShape::Deterministic`] — evenly spaced arrivals at exactly
//!   the configured rate (the textbook open-loop baseline).
//! * [`ArrivalShape::Poisson`] — seeded exponential inter-arrivals
//!   (memoryless traffic, the classic telecom model).
//! * [`ArrivalShape::Bursty`] — an on/off square wave: the long-run rate
//!   is the configured one, but all arrivals land inside the ON fraction
//!   (`burst_duty`) of each period at `rate / duty` instantaneous rate.
//! * [`ArrivalShape::Diurnal`] — a triangle ramp: the instantaneous rate
//!   climbs linearly from trough to peak over the first half-period and
//!   back down over the second (a compressed day/night cycle).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// Which arrival process generates the offered-query timestamps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalShape {
    /// Evenly spaced arrivals: query `i` at `(i + 1) / rate`.
    Deterministic,
    /// Seeded exponential inter-arrival gaps (memoryless).
    Poisson,
    /// On/off square wave: arrivals only during the ON window of each
    /// period, evenly spaced at `rate / duty` inside it.
    Bursty,
    /// Triangle ramp between a trough and a peak rate, repeating each
    /// period; mean rate equals the configured rate.
    Diurnal,
}

impl ArrivalShape {
    /// Parse a shape name (case-insensitive).
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s.to_ascii_lowercase().as_str() {
            "deterministic" | "uniform" | "fixed" => ArrivalShape::Deterministic,
            "poisson" => ArrivalShape::Poisson,
            "bursty" | "onoff" | "on-off" => ArrivalShape::Bursty,
            "diurnal" | "ramp" => ArrivalShape::Diurnal,
            _ => return None,
        })
    }

    /// All shapes, in sweep order (the order the bench records).
    pub const ALL: [ArrivalShape; 4] = [
        ArrivalShape::Deterministic,
        ArrivalShape::Poisson,
        ArrivalShape::Bursty,
        ArrivalShape::Diurnal,
    ];
}

impl fmt::Display for ArrivalShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ArrivalShape::Deterministic => "deterministic",
            ArrivalShape::Poisson => "poisson",
            ArrivalShape::Bursty => "bursty",
            ArrivalShape::Diurnal => "diurnal",
        })
    }
}

/// A fully specified arrival process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArrivalConfig {
    /// The process shape.
    pub shape: ArrivalShape,
    /// Long-run average arrival rate in queries per second. Every shape
    /// honours this as its mean rate.
    pub rate_qps: f64,
    /// Seed for the Poisson inter-arrival stream (the deterministic
    /// shapes ignore it).
    pub seed: u64,
    /// Bursty: fraction of each period that is ON (0 < duty ≤ 1).
    pub burst_duty: f64,
    /// Bursty: period of the on/off square wave, simulated µs.
    pub burst_period_us: f64,
    /// Diurnal: period of one trough→peak→trough ramp, simulated µs.
    pub diurnal_period_us: f64,
    /// Diurnal: peak rate as a multiple of the mean (1 < ratio < 2, so
    /// the trough rate `(2 - ratio) · rate` stays positive).
    pub diurnal_peak_ratio: f64,
}

impl ArrivalConfig {
    /// A process of `shape` at `rate_qps` with the default knobs.
    pub fn new(shape: ArrivalShape, rate_qps: f64, seed: u64) -> Self {
        ArrivalConfig {
            shape,
            rate_qps,
            seed,
            burst_duty: 0.25,
            burst_period_us: 20_000.0,
            diurnal_period_us: 200_000.0,
            diurnal_peak_ratio: 1.5,
        }
    }

    /// Arrival timestamps (simulated µs, nondecreasing) for `n` offered
    /// queries. Pure: the same configuration always yields the same
    /// timestamps, on any machine.
    ///
    /// # Panics
    /// Panics on a non-positive rate or out-of-range shape knobs
    /// (caller bugs).
    pub fn times_us(&self, n: usize) -> Vec<f64> {
        assert!(
            self.rate_qps > 0.0 && self.rate_qps.is_finite(),
            "arrival rate must be positive"
        );
        let rate_us = self.rate_qps / 1e6; // arrivals per simulated µs
        match self.shape {
            ArrivalShape::Deterministic => (0..n).map(|i| (i + 1) as f64 / rate_us).collect(),
            ArrivalShape::Poisson => {
                let mut rng = StdRng::seed_from_u64(self.seed);
                let mut t = 0.0f64;
                (0..n)
                    .map(|_| {
                        // Inverse-CDF exponential; 1-U keeps ln's argument
                        // in (0, 1] for U ∈ [0, 1).
                        let u: f64 = rng.gen_range(0.0..1.0);
                        t += -(1.0 - u).ln() / rate_us;
                        t
                    })
                    .collect()
            }
            ArrivalShape::Bursty => {
                assert!(
                    self.burst_duty > 0.0 && self.burst_duty <= 1.0,
                    "burst duty must be in (0, 1]"
                );
                assert!(self.burst_period_us > 0.0, "burst period must be positive");
                let on_us = self.burst_duty * self.burst_period_us;
                // Map evenly spaced "ON-time" instants back onto the wall
                // of the simulated clock: ON-time accrues only inside the
                // ON window of each period, so every arrival lands there
                // and the long-run rate is exactly `rate_qps`.
                (0..n)
                    .map(|i| {
                        let on_elapsed = (i + 1) as f64 * self.burst_duty / rate_us;
                        let k = ((on_elapsed - 1e-9) / on_us).floor().max(0.0);
                        let rem = on_elapsed - k * on_us;
                        k * self.burst_period_us + rem
                    })
                    .collect()
            }
            ArrivalShape::Diurnal => {
                assert!(
                    self.diurnal_peak_ratio > 1.0 && self.diurnal_peak_ratio < 2.0,
                    "diurnal peak ratio must be in (1, 2)"
                );
                assert!(
                    self.diurnal_period_us > 0.0,
                    "diurnal period must be positive"
                );
                self.diurnal_times(n, rate_us)
            }
        }
    }

    /// The diurnal ramp's instantaneous rate at simulated time `t_us`
    /// (queries per µs): linear trough→peak over the first half-period,
    /// peak→trough over the second.
    fn diurnal_rate_us(&self, t_us: f64) -> f64 {
        let rate_us = self.rate_qps / 1e6;
        let peak = self.diurnal_peak_ratio * rate_us;
        let trough = (2.0 - self.diurnal_peak_ratio) * rate_us;
        let half = self.diurnal_period_us / 2.0;
        let phase = t_us.rem_euclid(self.diurnal_period_us);
        if phase < half {
            trough + (peak - trough) * (phase / half)
        } else {
            peak - (peak - trough) * ((phase - half) / half)
        }
    }

    /// Deterministic inversion of the nonhomogeneous ramp: advance the
    /// clock so each step accumulates exactly one expected arrival
    /// (`∫ rate dt = 1`), solving the per-segment quadratic in closed
    /// form (the rate is linear within each half-period).
    fn diurnal_times(&self, n: usize, rate_us: f64) -> Vec<f64> {
        let peak = self.diurnal_peak_ratio * rate_us;
        let trough = (2.0 - self.diurnal_peak_ratio) * rate_us;
        let half = self.diurnal_period_us / 2.0;
        let slope = (peak - trough) / half; // |d rate / dt| on each leg
        let mut t = 0.0f64;
        let mut times = Vec::with_capacity(n);
        for _ in 0..n {
            let mut need = 1.0f64; // expected arrivals still to accrue
                                   // xtask:allow(unbounded-retry): integrates a strictly positive
                                   // rate curve segment by segment — `need` shrinks every pass and
                                   // the loop breaks once the remaining area fits the segment.
            loop {
                let phase = t.rem_euclid(self.diurnal_period_us);
                let (seg_end, a, b) = if phase < half {
                    // Up-ramp: rate = a + b·x from the current point.
                    (half - phase, self.diurnal_rate_us(t), slope)
                } else {
                    (
                        self.diurnal_period_us - phase,
                        self.diurnal_rate_us(t),
                        -slope,
                    )
                };
                let seg_area = a * seg_end + 0.5 * b * seg_end * seg_end;
                if seg_area < need {
                    need -= seg_area;
                    t += seg_end;
                    continue;
                }
                // Solve 0.5·b·x² + a·x = need for the in-segment offset.
                let x = if b.abs() < 1e-18 {
                    need / a
                } else {
                    let disc = (a * a + 2.0 * b * need).max(0.0);
                    (disc.sqrt() - a) / b
                };
                t += x.clamp(0.0, seg_end);
                break;
            }
            times.push(t);
        }
        times
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_is_evenly_spaced_at_the_rate() {
        let cfg = ArrivalConfig::new(ArrivalShape::Deterministic, 10_000.0, 0);
        let times = cfg.times_us(100);
        assert_eq!(times.len(), 100);
        // 10k qps = one arrival every 100 µs.
        for (i, &t) in times.iter().enumerate() {
            assert!((t - (i + 1) as f64 * 100.0).abs() < 1e-9, "t[{i}] = {t}");
        }
    }

    #[test]
    fn poisson_inter_arrival_mean_is_within_tolerance() {
        let cfg = ArrivalConfig::new(ArrivalShape::Poisson, 10_000.0, 42);
        let n = 20_000;
        let times = cfg.times_us(n);
        // Seeded stream: reproducible and strictly increasing.
        assert_eq!(times, cfg.times_us(n));
        assert!(times.windows(2).all(|w| w[1] > w[0]));
        let mean_gap = times[n - 1] / n as f64;
        // Expected gap 100 µs; a 20k-sample mean lands within a few
        // percent with overwhelming probability (the seed fixes the draw).
        assert!(
            (mean_gap - 100.0).abs() < 5.0,
            "mean inter-arrival {mean_gap} µs, expected ≈ 100 µs"
        );
        // A different seed is a different process.
        let other = ArrivalConfig { seed: 7, ..cfg };
        assert_ne!(times, other.times_us(n));
    }

    #[test]
    fn bursty_duty_cycle_is_exact_on_the_simulated_clock() {
        let cfg = ArrivalConfig::new(ArrivalShape::Bursty, 5_000.0, 0);
        let times = cfg.times_us(400);
        let on_us = cfg.burst_duty * cfg.burst_period_us;
        // Every arrival lands inside the ON window of its period — the
        // duty cycle is exact, not approximate, on the simulated clock.
        for &t in &times {
            let phase = t.rem_euclid(cfg.burst_period_us);
            assert!(
                phase <= on_us + 1e-6,
                "arrival at {t} µs falls in the OFF window (phase {phase})"
            );
        }
        // Long-run mean rate matches the configured rate: the last of n
        // arrivals lands near n/rate.
        let expect_span = 400.0 / (cfg.rate_qps / 1e6);
        assert!(
            (times[399] - expect_span).abs() < cfg.burst_period_us,
            "span {} vs expected {expect_span}",
            times[399]
        );
        // And inside a single ON window arrivals run at rate/duty.
        let gap = times[1] - times[0];
        assert!((gap - cfg.burst_duty / (cfg.rate_qps / 1e6)).abs() < 1e-6);
    }

    #[test]
    fn diurnal_ramp_is_monotone_between_knots() {
        let cfg = ArrivalConfig::new(ArrivalShape::Diurnal, 5_000.0, 0);
        let times = cfg.times_us(2_000);
        assert!(times.windows(2).all(|w| w[1] > w[0]));
        let half = cfg.diurnal_period_us / 2.0;
        // Inter-arrival gaps shrink while the rate ramps up and grow
        // while it ramps down — monotone between the half-period knots.
        for w in times.windows(3) {
            let phase0 = w[0].rem_euclid(cfg.diurnal_period_us);
            let phase2 = w[2].rem_euclid(cfg.diurnal_period_us);
            let same_leg = (phase0 < half) == (phase2 < half) && phase2 > phase0;
            if !same_leg {
                continue;
            }
            let (g1, g2) = (w[1] - w[0], w[2] - w[1]);
            if phase0 < half {
                assert!(g2 <= g1 + 1e-9, "up-ramp gaps must shrink: {g1} -> {g2}");
            } else {
                assert!(g2 >= g1 - 1e-9, "down-ramp gaps must grow: {g1} -> {g2}");
            }
        }
        // Mean rate honoured over whole periods.
        let periods = (times[1999] / cfg.diurnal_period_us).floor();
        assert!(periods >= 2.0, "test must span multiple periods");
        let rate = cfg.diurnal_rate_us(0.0);
        assert!((rate - (2.0 - cfg.diurnal_peak_ratio) * cfg.rate_qps / 1e6).abs() < 1e-12);
    }

    #[test]
    fn shape_parse_and_display_round_trip() {
        for shape in ArrivalShape::ALL {
            assert_eq!(ArrivalShape::parse(&shape.to_string()), Some(shape));
        }
        assert_eq!(
            ArrivalShape::parse("Uniform"),
            Some(ArrivalShape::Deterministic)
        );
        assert_eq!(ArrivalShape::parse("on-off"), Some(ArrivalShape::Bursty));
        assert_eq!(ArrivalShape::parse("ramp"), Some(ArrivalShape::Diurnal));
        assert_eq!(ArrivalShape::parse("lognormal"), None);
    }

    #[test]
    #[should_panic(expected = "arrival rate must be positive")]
    fn zero_rate_is_rejected() {
        ArrivalConfig::new(ArrivalShape::Deterministic, 0.0, 0).times_us(1);
    }
}
