//! Sharding the page store: partitioning one linear order's pages.
//!
//! A shard owns a subset of the global pages ([`slpm_storage::PageStore`]
//! shard slices) plus its own LRU [`BufferPool`]. Two placements are
//! provided:
//!
//! * [`Partition::Contiguous`] — shard `s` owns one contiguous run of
//!   page ids. With a locality-preserving order a query's pages are
//!   consecutive, so most queries hit **one** shard and read it
//!   sequentially — the clustering story of the paper, sharded.
//! * [`Partition::RoundRobin`] — page `p` lives on shard `p mod S`,
//!   reusing [`slpm_storage::decluster::RoundRobin`]: consecutive pages
//!   spread across *all* shards, so one query fans out S-ways — the
//!   paper's declustering use-case, where per-query parallelism is worth
//!   more than per-shard sequentiality.
//!
//! Shard placement never changes *what* is read (global page ids and
//! record bytes are shard-invariant); it only changes *where* the reads
//! land, which is exactly what the engine's parity guarantees rely on.

use slpm_storage::decluster::Declustering;
use slpm_storage::{BufferPool, BufferStats, PageMapper, PageStore, RoundRobin};
use std::fmt;
use std::sync::{Arc, Mutex};

/// How global pages are assigned to shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Partition {
    /// Contiguous, balanced runs of page ids per shard.
    Contiguous,
    /// Declustered: page `p` on shard `p mod S` ([`RoundRobin`]).
    RoundRobin,
}

impl Partition {
    /// Parse a partition name (case-insensitive).
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s.to_ascii_lowercase().as_str() {
            "contiguous" | "range" => Partition::Contiguous,
            "round-robin" | "roundrobin" | "rr" => Partition::RoundRobin,
            _ => return None,
        })
    }
}

impl fmt::Display for Partition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Partition::Contiguous => "contiguous",
            Partition::RoundRobin => "round-robin",
        })
    }
}

/// The page → shard assignment for one store geometry.
#[derive(Debug, Clone, Copy)]
pub struct ShardMap {
    shards: usize,
    num_pages: usize,
    partition: Partition,
    /// Contiguous split: the first `rem` shards own `base + 1` pages.
    base: usize,
    rem: usize,
}

impl ShardMap {
    /// Assign `num_pages` global pages to `shards` shards.
    ///
    /// # Panics
    /// Panics when `shards == 0`.
    pub fn new(shards: usize, num_pages: usize, partition: Partition) -> Self {
        assert!(shards >= 1, "need at least one shard");
        ShardMap {
            shards,
            num_pages,
            partition,
            base: num_pages / shards,
            rem: num_pages % shards,
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Total pages assigned.
    pub fn num_pages(&self) -> usize {
        self.num_pages
    }

    /// The placement policy.
    pub fn partition(&self) -> Partition {
        self.partition
    }

    /// Shard owning global page `page`.
    ///
    /// # Panics
    /// Panics on a page id outside the map.
    pub fn shard_of(&self, page: usize) -> usize {
        assert!(page < self.num_pages, "page {page} out of range");
        match self.partition {
            Partition::Contiguous => {
                // First `rem` shards own `base + 1` pages each.
                let wide = self.rem * (self.base + 1);
                if page < wide {
                    page / (self.base + 1)
                } else {
                    self.rem + (page - wide) / self.base
                }
            }
            Partition::RoundRobin => RoundRobin::new(self.shards).disk_of(page),
        }
    }

    /// Global page ids owned by `shard`, ascending.
    pub fn pages_of(&self, shard: usize) -> Vec<usize> {
        assert!(shard < self.shards, "shard {shard} out of range");
        match self.partition {
            Partition::Contiguous => {
                let start = shard * self.base + shard.min(self.rem);
                let len = self.base + usize::from(shard < self.rem);
                (start..start + len).collect()
            }
            Partition::RoundRobin => (shard..self.num_pages).step_by(self.shards).collect(),
        }
    }
}

/// One shard: a slice of the page store plus its private LRU pool.
pub struct Shard {
    id: usize,
    store: PageStore,
    buffer: BufferPool,
}

impl Shard {
    /// Build shard `id` of the map: a [`PageStore`] slice over the owned
    /// pages and a fresh LRU pool of `buffer_pages` frames. `placement`
    /// is the store's shared record placement
    /// ([`PageStore::placement_of`]), computed once per fleet so S shards
    /// hold one copy, not S.
    pub fn build(
        id: usize,
        map: &ShardMap,
        mapper: &PageMapper,
        placement: Arc<Vec<(usize, usize)>>,
        record_size: usize,
        buffer_pages: usize,
    ) -> Self {
        let owned = map.pages_of(id);
        Shard {
            id,
            store: PageStore::build_shard_placed(mapper, record_size, &owned, placement),
            buffer: BufferPool::new(buffer_pages.max(1)),
        }
    }

    /// Shard id.
    pub fn id(&self) -> usize {
        self.id
    }

    /// The underlying store slice.
    pub fn store(&self) -> &PageStore {
        &self.store
    }

    /// Replay one query's page list against this shard: pages served from
    /// the LRU pool are hits; misses go to the store (counted reads).
    /// Returns `(hits, misses)`.
    ///
    /// Replay order is the caller's page order — the engine routes each
    /// shard's queries in deterministic batch order, which is what makes
    /// hit/miss accounting reproducible for every thread count.
    pub fn replay(&mut self, pages: &[usize]) -> (usize, usize) {
        let mut hits = 0;
        let mut misses = 0;
        for &page in pages {
            if self.buffer.access(page) {
                hits += 1;
            } else {
                let _ = self.store.read_page(page);
                misses += 1;
            }
        }
        (hits, misses)
    }

    /// Cumulative buffer statistics.
    pub fn buffer_stats(&self) -> BufferStats {
        self.buffer.stats()
    }

    /// Pages read from backing storage (i.e. buffer misses) so far.
    pub fn storage_reads(&self) -> usize {
        self.store.total_reads()
    }
}

/// One **epoch** of the fleet: a versioned, immutable set of shard
/// slices. The engine publishes the current `Arc<ShardSet>` behind a
/// lock and every admitted batch captures the set it was routed against,
/// so a failover swap (rebuilding a tripped shard's rank-range on a
/// fresh slice and publishing `epoch + 1`) never disturbs in-flight
/// batches: they drain against their own epoch's slices while new
/// admissions route to the rebuilt one. Because pages are read-only, a
/// rebuilt slice *is* a replica — same bytes, fresh buffer pool, fresh
/// (unpoisoned) lock.
pub struct ShardSet {
    epoch: u64,
    shards: Vec<Arc<Mutex<Shard>>>,
}

impl ShardSet {
    /// Epoch 0: the fleet as first built.
    pub fn new(shards: Vec<Shard>) -> Self {
        ShardSet {
            epoch: 0,
            shards: shards
                .into_iter()
                .map(|s| Arc::new(Mutex::new(s)))
                .collect(),
        }
    }

    /// This set's epoch (bumped by one per swap).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of shard slices.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// True on an empty fleet (never built by the engine).
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// Handle to one shard's slice.
    pub fn shard(&self, id: usize) -> &Arc<Mutex<Shard>> {
        &self.shards[id]
    }

    /// The next epoch with `replacements` swapped in: healthy shards are
    /// shared by `Arc` (no copies), each replaced id gets its fresh
    /// slice. This is the atomic failover step — callers publish the
    /// returned set under the engine's slice lock.
    pub fn with_replacements(&self, replacements: Vec<(usize, Shard)>) -> ShardSet {
        let mut shards: Vec<Arc<Mutex<Shard>>> = self.shards.iter().map(Arc::clone).collect();
        for (id, fresh) in replacements {
            shards[id] = Arc::new(Mutex::new(fresh));
        }
        ShardSet {
            epoch: self.epoch + 1,
            shards,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slpm_storage::PageLayout;
    use spectral_lpm::LinearOrder;

    #[test]
    fn contiguous_partition_is_balanced_and_exhaustive() {
        // 10 pages over 4 shards: 3, 3, 2, 2.
        let map = ShardMap::new(4, 10, Partition::Contiguous);
        let sizes: Vec<usize> = (0..4).map(|s| map.pages_of(s).len()).collect();
        assert_eq!(sizes, vec![3, 3, 2, 2]);
        // pages_of and shard_of agree, and runs are contiguous.
        for s in 0..4 {
            let pages = map.pages_of(s);
            for w in pages.windows(2) {
                assert_eq!(w[1], w[0] + 1);
            }
            for &p in &pages {
                assert_eq!(map.shard_of(p), s);
            }
        }
        let total: usize = sizes.iter().sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn round_robin_partition_matches_modulo() {
        let map = ShardMap::new(3, 10, Partition::RoundRobin);
        for p in 0..10 {
            assert_eq!(map.shard_of(p), p % 3);
        }
        assert_eq!(map.pages_of(1), vec![1, 4, 7]);
    }

    #[test]
    fn more_shards_than_pages() {
        let map = ShardMap::new(5, 3, Partition::Contiguous);
        for p in 0..3 {
            assert_eq!(map.shard_of(p), p);
        }
        assert!(map.pages_of(4).is_empty());
        let rr = ShardMap::new(5, 3, Partition::RoundRobin);
        assert_eq!(rr.pages_of(4), Vec::<usize>::new());
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        ShardMap::new(0, 4, Partition::Contiguous);
    }

    #[test]
    fn single_shard_owns_everything() {
        for partition in [Partition::Contiguous, Partition::RoundRobin] {
            let map = ShardMap::new(1, 7, partition);
            assert_eq!(map.pages_of(0), (0..7).collect::<Vec<_>>());
        }
    }

    #[test]
    fn shard_replay_counts_hits_and_storage_reads() {
        let order = LinearOrder::identity(16);
        let mapper = PageMapper::new(&order, PageLayout::new(4)); // 4 pages
        let map = ShardMap::new(2, mapper.num_pages(), Partition::Contiguous);
        let placement = PageStore::placement_of(&mapper);
        let mut shard = Shard::build(0, &map, &mapper, placement, 8, 8);
        // Shard 0 owns pages {0, 1}.
        let (h, m) = shard.replay(&[0, 1, 0]);
        assert_eq!((h, m), (1, 2));
        assert_eq!(shard.storage_reads(), 2); // only misses hit the store
        assert_eq!(shard.buffer_stats().hits, 1);
        assert_eq!(shard.id(), 0);
        assert_eq!(shard.store().page_ids(), &[0, 1]);
    }

    #[test]
    fn shard_set_swaps_epochs_and_shares_healthy_slices() {
        let order = LinearOrder::identity(16);
        let mapper = PageMapper::new(&order, PageLayout::new(4));
        let map = ShardMap::new(2, mapper.num_pages(), Partition::Contiguous);
        let placement = PageStore::placement_of(&mapper);
        let build = |id: usize| Shard::build(id, &map, &mapper, Arc::clone(&placement), 8, 8);
        let set = ShardSet::new(vec![build(0), build(1)]);
        assert_eq!(set.epoch(), 0);
        assert_eq!(set.len(), 2);
        assert!(!set.is_empty());
        // Warm shard 1's pool, then swap shard 0 out.
        let _ = set.shard(1).lock().unwrap().replay(&[2, 3]);
        let next = set.with_replacements(vec![(0, build(0))]);
        assert_eq!(next.epoch(), 1);
        // The healthy slice is the *same* object (Arc-shared)…
        assert!(Arc::ptr_eq(set.shard(1), next.shard(1)));
        // …while the rebuilt slice is fresh: cold pool, zero reads.
        assert!(!Arc::ptr_eq(set.shard(0), next.shard(0)));
        assert_eq!(next.shard(0).lock().unwrap().storage_reads(), 0);
        assert_eq!(next.shard(1).lock().unwrap().storage_reads(), 2);
    }

    #[test]
    fn partition_parse_and_display() {
        assert_eq!(Partition::parse("contiguous"), Some(Partition::Contiguous));
        assert_eq!(Partition::parse("RR"), Some(Partition::RoundRobin));
        assert_eq!(Partition::parse("Round-Robin"), Some(Partition::RoundRobin));
        assert_eq!(Partition::parse("hashed"), None);
        assert_eq!(Partition::Contiguous.to_string(), "contiguous");
        assert_eq!(Partition::RoundRobin.to_string(), "round-robin");
    }
}
