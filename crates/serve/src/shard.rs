//! Sharding the page store: partitioning one linear order's pages.
//!
//! A shard owns a subset of the global pages ([`slpm_storage::PageStore`]
//! shard slices) plus its own LRU [`BufferPool`]. Two placements are
//! provided:
//!
//! * [`Partition::Contiguous`] — shard `s` owns one contiguous run of
//!   page ids. With a locality-preserving order a query's pages are
//!   consecutive, so most queries hit **one** shard and read it
//!   sequentially — the clustering story of the paper, sharded.
//! * [`Partition::RoundRobin`] — page `p` lives on shard `p mod S`,
//!   reusing [`slpm_storage::decluster::RoundRobin`]: consecutive pages
//!   spread across *all* shards, so one query fans out S-ways — the
//!   paper's declustering use-case, where per-query parallelism is worth
//!   more than per-shard sequentiality.
//!
//! Shard placement never changes *what* is read (global page ids and
//! record bytes are shard-invariant); it only changes *where* the reads
//! land, which is exactly what the engine's parity guarantees rely on.

use slpm_storage::decluster::Declustering;
use slpm_storage::{BufferPool, BufferStats, PageMapper, PageStore, RoundRobin, StorageError};
use std::fmt;
use std::path::Path;
use std::sync::{Arc, Mutex};

/// How global pages are assigned to shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Partition {
    /// Contiguous, balanced runs of page ids per shard.
    Contiguous,
    /// Declustered: page `p` on shard `p mod S` ([`RoundRobin`]).
    RoundRobin,
}

impl Partition {
    /// Parse a partition name (case-insensitive).
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s.to_ascii_lowercase().as_str() {
            "contiguous" | "range" => Partition::Contiguous,
            "round-robin" | "roundrobin" | "rr" => Partition::RoundRobin,
            _ => return None,
        })
    }
}

impl fmt::Display for Partition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Partition::Contiguous => "contiguous",
            Partition::RoundRobin => "round-robin",
        })
    }
}

/// The page → shard assignment for one store geometry.
#[derive(Debug, Clone, Copy)]
pub struct ShardMap {
    shards: usize,
    num_pages: usize,
    partition: Partition,
    /// Contiguous split: the first `rem` shards own `base + 1` pages.
    base: usize,
    rem: usize,
}

impl ShardMap {
    /// Assign `num_pages` global pages to `shards` shards.
    ///
    /// # Panics
    /// Panics when `shards == 0`.
    pub fn new(shards: usize, num_pages: usize, partition: Partition) -> Self {
        assert!(shards >= 1, "need at least one shard");
        ShardMap {
            shards,
            num_pages,
            partition,
            base: num_pages / shards,
            rem: num_pages % shards,
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Total pages assigned.
    pub fn num_pages(&self) -> usize {
        self.num_pages
    }

    /// The placement policy.
    pub fn partition(&self) -> Partition {
        self.partition
    }

    /// Shard owning global page `page`.
    ///
    /// # Panics
    /// Panics on a page id outside the map.
    pub fn shard_of(&self, page: usize) -> usize {
        assert!(page < self.num_pages, "page {page} out of range");
        match self.partition {
            Partition::Contiguous => {
                // First `rem` shards own `base + 1` pages each.
                let wide = self.rem * (self.base + 1);
                if page < wide {
                    page / (self.base + 1)
                } else {
                    self.rem + (page - wide) / self.base
                }
            }
            Partition::RoundRobin => RoundRobin::new(self.shards).disk_of(page),
        }
    }

    /// Global page ids owned by `shard`, ascending.
    pub fn pages_of(&self, shard: usize) -> Vec<usize> {
        assert!(shard < self.shards, "shard {shard} out of range");
        match self.partition {
            Partition::Contiguous => {
                let start = shard * self.base + shard.min(self.rem);
                let len = self.base + usize::from(shard < self.rem);
                (start..start + len).collect()
            }
            Partition::RoundRobin => (shard..self.num_pages).step_by(self.shards).collect(),
        }
    }
}

/// How a shard reads its pages: LRU pool size, readahead window, and
/// the optional disk page file to fault frames from.
#[derive(Clone, Copy, Debug)]
pub struct ReadPath<'a> {
    /// LRU pool capacity in pages (clamped to at least 1).
    pub buffer_pages: usize,
    /// Readahead window: pages of a miss's monotone run prefetched per
    /// demand miss. `0` = off.
    pub readahead: usize,
    /// Disk page file to read through, or `None` for in-memory payloads.
    pub page_file: Option<&'a Path>,
}

/// One shard: a slice of the page store plus its private LRU pool.
pub struct Shard {
    id: usize,
    store: PageStore,
    buffer: BufferPool,
    /// Readahead window: on a demand miss, up to this many following
    /// pages of the miss's monotone run are prefetched. `0` = off.
    readahead: usize,
}

impl Shard {
    /// Build shard `id` of the map: a [`PageStore`] slice over the owned
    /// pages and a fresh LRU pool sized by the [`ReadPath`]. `placement`
    /// is the store's shared record placement
    /// ([`PageStore::placement_of`]), computed once per fleet so S shards
    /// hold one copy, not S.
    ///
    /// With `read_path.page_file: Some(path)` the slice opens the disk
    /// page file at `path` instead of materialising payloads — same
    /// bytes, same accounting, reads fault frames off disk.
    /// `read_path.readahead` sets the run-prefetch window (pages per
    /// demand miss; `0` disables, which also keeps hit/miss accounting
    /// bitwise identical to the pre-disk engine).
    pub fn build(
        id: usize,
        map: &ShardMap,
        mapper: &PageMapper,
        placement: Arc<Vec<(usize, usize)>>,
        record_size: usize,
        read_path: ReadPath<'_>,
    ) -> Result<Self, StorageError> {
        let owned = map.pages_of(id);
        let store = match read_path.page_file {
            None => PageStore::build_shard_placed(mapper, record_size, &owned, placement),
            Some(path) => {
                PageStore::open_shard_placed(path, mapper, record_size, &owned, placement)?
            }
        };
        Ok(Shard {
            id,
            store,
            buffer: BufferPool::new(read_path.buffer_pages.max(1)),
            readahead: read_path.readahead,
        })
    }

    /// Shard id.
    pub fn id(&self) -> usize {
        self.id
    }

    /// The underlying store slice.
    pub fn store(&self) -> &PageStore {
        &self.store
    }

    /// Replay one query's page list against this shard: pages served from
    /// the LRU pool are hits; misses fault their payload from the store
    /// (counted reads) and, with readahead on, pull the next pages of the
    /// miss's monotone run into the pool ahead of demand. Returns
    /// `(hits, misses)`; storage failures (disk errors, corruption,
    /// injected faults) surface as typed [`StorageError`]s.
    ///
    /// Replay order is the caller's page order — the engine routes each
    /// shard's queries in deterministic batch order, which is what makes
    /// hit/miss accounting reproducible for every thread count. The
    /// prefetcher is deterministic too (it looks only at the page list
    /// and pool residency), so accounting stays bitwise identical between
    /// memory- and disk-backed slices.
    pub fn replay(&mut self, pages: &[usize]) -> Result<(usize, usize), StorageError> {
        let mut hits = 0;
        let mut misses = 0;
        for (i, &page) in pages.iter().enumerate() {
            if self.buffer.get(page).is_some() {
                hits += 1;
                continue;
            }
            misses += 1;
            // An unowned page is a routing bug in the caller, not a
            // storage condition: keep the panicking contract (the engine
            // catches it and surfaces the lost unit). Everything else —
            // disk errors, corruption, injected faults — is typed.
            let bytes = match self.store.try_read_page(page) {
                Ok(bytes) => bytes,
                Err(e @ StorageError::PageNotOwned { .. }) => panic!("{e}"),
                Err(e) => return Err(e),
            };
            self.buffer.admit(page, bytes);
            if self.readahead > 0 {
                self.prefetch_run(pages, i)?;
            }
        }
        Ok((hits, misses))
    }

    /// Extend the demand miss at `pages[i]` into its monotone run: the
    /// linear order already sorted each query's shard list, so pages that
    /// follow contiguously in the list are contiguous **on disk** — one
    /// [`PageStore::read_run`] (a single seek) fetches them all. The
    /// window stops at the readahead budget, at the first gap in the run,
    /// at the first already-resident page, and always below the pool
    /// capacity (speculation must never evict the demand page).
    fn prefetch_run(&mut self, pages: &[usize], i: usize) -> Result<(), StorageError> {
        let budget = self.readahead.min(self.buffer.capacity().saturating_sub(1));
        let start = pages[i] + 1;
        let mut count = 0;
        for &q in &pages[i + 1..] {
            if count == budget || q != start + count || self.buffer.is_resident(q) {
                break;
            }
            count += 1;
        }
        if count == 0 {
            return Ok(());
        }
        let run = self.store.read_run(start, count)?;
        for (k, bytes) in run.into_iter().enumerate() {
            self.buffer.admit_prefetch(start + k, bytes);
        }
        Ok(())
    }

    /// Cumulative buffer statistics.
    pub fn buffer_stats(&self) -> BufferStats {
        self.buffer.stats()
    }

    /// Pages read from backing storage (demand misses + prefetches).
    pub fn storage_reads(&self) -> usize {
        self.store.total_reads()
    }
}

/// One **epoch** of the fleet: a versioned, immutable set of shard
/// slices. The engine publishes the current `Arc<ShardSet>` behind a
/// lock and every admitted batch captures the set it was routed against,
/// so a failover swap (rebuilding a tripped shard's rank-range on a
/// fresh slice and publishing `epoch + 1`) never disturbs in-flight
/// batches: they drain against their own epoch's slices while new
/// admissions route to the rebuilt one. Because pages are read-only, a
/// rebuilt slice *is* a replica — same bytes, fresh buffer pool, fresh
/// (unpoisoned) lock.
pub struct ShardSet {
    epoch: u64,
    shards: Vec<Arc<Mutex<Shard>>>,
}

impl ShardSet {
    /// Epoch 0: the fleet as first built.
    pub fn new(shards: Vec<Shard>) -> Self {
        ShardSet {
            epoch: 0,
            shards: shards
                .into_iter()
                .map(|s| Arc::new(Mutex::new(s)))
                .collect(),
        }
    }

    /// This set's epoch (bumped by one per swap).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of shard slices.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// True on an empty fleet (never built by the engine).
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// Handle to one shard's slice.
    pub fn shard(&self, id: usize) -> &Arc<Mutex<Shard>> {
        &self.shards[id]
    }

    /// The next epoch with `replacements` swapped in: healthy shards are
    /// shared by `Arc` (no copies), each replaced id gets its fresh
    /// slice. This is the atomic failover step — callers publish the
    /// returned set under the engine's slice lock.
    pub fn with_replacements(&self, replacements: Vec<(usize, Shard)>) -> ShardSet {
        let mut shards: Vec<Arc<Mutex<Shard>>> = self.shards.iter().map(Arc::clone).collect();
        for (id, fresh) in replacements {
            shards[id] = Arc::new(Mutex::new(fresh));
        }
        ShardSet {
            epoch: self.epoch + 1,
            shards,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slpm_storage::PageLayout;
    use spectral_lpm::LinearOrder;

    /// In-memory [`ReadPath`] with the given pool size and readahead.
    fn mem_pool(buffer_pages: usize, readahead: usize) -> ReadPath<'static> {
        ReadPath {
            buffer_pages,
            readahead,
            page_file: None,
        }
    }

    #[test]
    fn contiguous_partition_is_balanced_and_exhaustive() {
        // 10 pages over 4 shards: 3, 3, 2, 2.
        let map = ShardMap::new(4, 10, Partition::Contiguous);
        let sizes: Vec<usize> = (0..4).map(|s| map.pages_of(s).len()).collect();
        assert_eq!(sizes, vec![3, 3, 2, 2]);
        // pages_of and shard_of agree, and runs are contiguous.
        for s in 0..4 {
            let pages = map.pages_of(s);
            for w in pages.windows(2) {
                assert_eq!(w[1], w[0] + 1);
            }
            for &p in &pages {
                assert_eq!(map.shard_of(p), s);
            }
        }
        let total: usize = sizes.iter().sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn round_robin_partition_matches_modulo() {
        let map = ShardMap::new(3, 10, Partition::RoundRobin);
        for p in 0..10 {
            assert_eq!(map.shard_of(p), p % 3);
        }
        assert_eq!(map.pages_of(1), vec![1, 4, 7]);
    }

    #[test]
    fn more_shards_than_pages() {
        let map = ShardMap::new(5, 3, Partition::Contiguous);
        for p in 0..3 {
            assert_eq!(map.shard_of(p), p);
        }
        assert!(map.pages_of(4).is_empty());
        let rr = ShardMap::new(5, 3, Partition::RoundRobin);
        assert_eq!(rr.pages_of(4), Vec::<usize>::new());
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        ShardMap::new(0, 4, Partition::Contiguous);
    }

    #[test]
    fn single_shard_owns_everything() {
        for partition in [Partition::Contiguous, Partition::RoundRobin] {
            let map = ShardMap::new(1, 7, partition);
            assert_eq!(map.pages_of(0), (0..7).collect::<Vec<_>>());
        }
    }

    #[test]
    fn shard_replay_counts_hits_and_storage_reads() {
        let order = LinearOrder::identity(16);
        let mapper = PageMapper::new(&order, PageLayout::new(4)); // 4 pages
        let map = ShardMap::new(2, mapper.num_pages(), Partition::Contiguous);
        let placement = PageStore::placement_of(&mapper);
        let mut shard = Shard::build(0, &map, &mapper, placement, 8, mem_pool(8, 0)).unwrap();
        // Shard 0 owns pages {0, 1}.
        let (h, m) = shard.replay(&[0, 1, 0]).unwrap();
        assert_eq!((h, m), (1, 2));
        assert_eq!(shard.storage_reads(), 2); // only misses hit the store
        assert_eq!(shard.buffer_stats().hits, 1);
        assert_eq!(shard.id(), 0);
        assert_eq!(shard.store().page_ids(), &[0, 1]);
    }

    #[test]
    fn readahead_turns_run_misses_into_prefetch_hits() {
        let order = LinearOrder::identity(32);
        let mapper = PageMapper::new(&order, PageLayout::new(4)); // 8 pages
        let map = ShardMap::new(1, mapper.num_pages(), Partition::Contiguous);
        let placement = PageStore::placement_of(&mapper);
        let build = |readahead: usize| {
            Shard::build(
                0,
                &map,
                &mapper,
                Arc::clone(&placement),
                8,
                mem_pool(8, readahead),
            )
            .unwrap()
        };
        // An ordered sweep of a 4-page run, readahead off: 4 demand misses.
        let mut plain = build(0);
        let (h0, m0) = plain.replay(&[2, 3, 4, 5]).unwrap();
        assert_eq!((h0, m0), (0, 4));
        assert_eq!(plain.buffer_stats().prefetched, 0);
        // Readahead 3: the first miss prefetches the rest of the run, so
        // the remaining touches are hits — all of them prefetch hits.
        let mut ahead = build(3);
        let (h1, m1) = ahead.replay(&[2, 3, 4, 5]).unwrap();
        assert_eq!((h1, m1), (3, 1));
        let stats = ahead.buffer_stats();
        assert_eq!(stats.prefetched, 3);
        assert_eq!(stats.prefetch_hits, 3);
        // Same total storage reads either way: readahead moves reads into
        // runs, it does not add any on a fully-consumed sweep.
        assert_eq!(ahead.storage_reads(), plain.storage_reads());
        // A gap breaks the run: page 7 is not prefetched from the 2..=5 run.
        let mut gap = build(8);
        let (_, m2) = gap.replay(&[0, 1, 7]).unwrap();
        assert_eq!(m2, 2); // 0 misses+prefetches 1, 7 misses separately
        assert_eq!(gap.buffer_stats().prefetched, 1);
    }

    #[test]
    fn replay_surfaces_typed_storage_errors() {
        let order = LinearOrder::identity(16);
        let mapper = PageMapper::new(&order, PageLayout::new(4));
        let map = ShardMap::new(1, mapper.num_pages(), Partition::Contiguous);
        let placement = PageStore::placement_of(&mapper);
        let mut shard = Shard::build(0, &map, &mapper, placement, 8, mem_pool(8, 0)).unwrap();
        shard.store().arm_read_error(2);
        assert_eq!(
            shard.replay(&[1, 2]).unwrap_err(),
            StorageError::Injected { page: 2 }
        );
        // The failed page never entered the pool; a retry reads it fresh.
        let (h, m) = shard.replay(&[1, 2]).unwrap();
        assert_eq!((h, m), (1, 1));
    }

    #[test]
    fn shard_set_swaps_epochs_and_shares_healthy_slices() {
        let order = LinearOrder::identity(16);
        let mapper = PageMapper::new(&order, PageLayout::new(4));
        let map = ShardMap::new(2, mapper.num_pages(), Partition::Contiguous);
        let placement = PageStore::placement_of(&mapper);
        let build = |id: usize| {
            Shard::build(id, &map, &mapper, Arc::clone(&placement), 8, mem_pool(8, 0)).unwrap()
        };
        let set = ShardSet::new(vec![build(0), build(1)]);
        assert_eq!(set.epoch(), 0);
        assert_eq!(set.len(), 2);
        assert!(!set.is_empty());
        // Warm shard 1's pool, then swap shard 0 out.
        let _ = set.shard(1).lock().unwrap().replay(&[2, 3]);
        let next = set.with_replacements(vec![(0, build(0))]);
        assert_eq!(next.epoch(), 1);
        // The healthy slice is the *same* object (Arc-shared)…
        assert!(Arc::ptr_eq(set.shard(1), next.shard(1)));
        // …while the rebuilt slice is fresh: cold pool, zero reads.
        assert!(!Arc::ptr_eq(set.shard(0), next.shard(0)));
        assert_eq!(next.shard(0).lock().unwrap().storage_reads(), 0);
        assert_eq!(next.shard(1).lock().unwrap().storage_reads(), 2);
    }

    #[test]
    fn partition_parse_and_display() {
        assert_eq!(Partition::parse("contiguous"), Some(Partition::Contiguous));
        assert_eq!(Partition::parse("RR"), Some(Partition::RoundRobin));
        assert_eq!(Partition::parse("Round-Robin"), Some(Partition::RoundRobin));
        assert_eq!(Partition::parse("hashed"), None);
        assert_eq!(Partition::Contiguous.to_string(), "contiguous");
        assert_eq!(Partition::RoundRobin.to_string(), "round-robin");
    }
}
