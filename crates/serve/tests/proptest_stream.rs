//! Property tests for the streaming admission loop: whatever the arrival
//! process, micro-batch knobs and admission policy, the sequence of
//! queries a stream executes must produce **bitwise-identical**
//! `digest_outcomes` to a one-shot batch `run` of that same sequence —
//! streaming moves *when* work happens, never *what* it answers.

use proptest::prelude::*;
use slpm_graph::grid::GridSpec;
use slpm_serve::arrival::{ArrivalConfig, ArrivalShape};
use slpm_serve::engine::{EngineConfig, ServeEngine};
use slpm_serve::stream::{stream_serve, AdmissionPolicy, StreamConfig};
use slpm_serve::workload::{grid_points, mixed_workload_labeled, WorkloadConfig};
use spectral_lpm::LinearOrder;

/// One full streaming scenario: workload shape, arrival process, and the
/// admission knobs, all drawn together.
#[derive(Debug, Clone)]
struct Scenario {
    queries: usize,
    workload_seed: u64,
    knn_every: usize,
    shape: ArrivalShape,
    rate_qps: f64,
    arrival_seed: u64,
    batch_delay_us: f64,
    max_batch: usize,
    queue_depth: usize,
    policy: AdmissionPolicy,
    shards: usize,
    threads: usize,
}

fn scenario() -> impl Strategy<Value = Scenario> {
    (
        (8usize..=48, 0u64..u64::MAX, 0usize..=5),
        (0usize..4, 1_000.0f64..500_000.0, 0u64..u64::MAX),
        (0.0f64..500.0, 1usize..=16, 1usize..=8),
        0u8..2,
        (1usize..=3, 1usize..=3),
    )
        .prop_map(
            |(
                (queries, workload_seed, knn_every),
                (shape_idx, rate_qps, arrival_seed),
                (batch_delay_us, max_batch, queue_depth),
                block,
                (shards, threads),
            )| Scenario {
                queries,
                workload_seed,
                knn_every,
                shape: ArrivalShape::ALL[shape_idx],
                rate_qps,
                arrival_seed,
                batch_delay_us,
                max_batch,
                queue_depth,
                policy: if block == 1 {
                    AdmissionPolicy::Block
                } else {
                    AdmissionPolicy::Shed
                },
                shards,
                threads,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn streamed_digest_equals_one_shot_run_of_the_admitted_sequence(s in scenario()) {
        let spec = GridSpec::cube(12, 2);
        let points = grid_points(&spec);
        let order = LinearOrder::identity(points.len());
        let engine = ServeEngine::new(
            &points,
            &order,
            EngineConfig {
                records_per_page: 4,
                fanout: 4,
                buffer_pages: 8,
                shards: s.shards,
                threads: s.threads,
                ..Default::default()
            },
        );
        let labeled = mixed_workload_labeled(
            &spec,
            &WorkloadConfig {
                queries: s.queries,
                seed: s.workload_seed,
                knn_every: s.knn_every,
                k: 8,
            },
        );
        let (queries, labels): (Vec<_>, Vec<_>) = labeled.into_iter().unzip();
        let cfg = StreamConfig {
            arrival: ArrivalConfig::new(s.shape, s.rate_qps, s.arrival_seed),
            batch_delay_us: s.batch_delay_us,
            max_batch: s.max_batch,
            queue_depth: s.queue_depth,
            policy: s.policy,
            ..Default::default()
        };
        let report = stream_serve(&engine, &queries, &labels, &cfg).expect("no replay panic");
        // Accounting closes: offered = admitted + shed, and block mode
        // never sheds.
        prop_assert_eq!(report.slo.offered, s.queries);
        prop_assert_eq!(report.slo.admitted + report.slo.shed, report.slo.offered);
        if s.policy == AdmissionPolicy::Block {
            prop_assert_eq!(report.slo.shed, 0);
        }
        prop_assert!(report.slo.max_queue_depth <= s.queue_depth.max(1));
        // The core property: replaying the admitted subsequence as one
        // batch yields the identical digest, bit for bit.
        let admitted: Vec<_> = report
            .admitted_idx
            .iter()
            .map(|&q| queries[q].clone())
            .collect();
        let one_shot = engine.run(&admitted).expect("no replay panic");
        prop_assert_eq!(report.digest, one_shot.digest);
        prop_assert_eq!(report.outcomes.len(), one_shot.outcomes.len());
        for (a, b) in report.outcomes.iter().zip(&one_shot.outcomes) {
            prop_assert_eq!(&a.results, &b.results);
            prop_assert_eq!(a.pages, b.pages);
            prop_assert_eq!(a.runs, b.runs);
        }
        // And the engine's queues are fully drained afterwards.
        prop_assert!(engine.queue_depths().iter().all(|&d| d == 0));
    }
}
