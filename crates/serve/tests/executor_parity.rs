//! Bitwise parity of the linear-algebra stack across executor backends.
//!
//! PR 10's one-pool contract: the same kernel call must answer
//! **bit-for-bit identically** whether it is scheduled
//!
//! * serially (`Pool::serial()`),
//! * on a throwaway scoped-spawn pool (`Pool::new(..)`), or
//! * on the serving engine's persistent [`WorkerPool`] via the
//!   `ScopeExecutor` seam (`WorkerPool::linalg_pool()`),
//!
//! and at **any thread count** — the fixed `REDUCE_CHUNK` tree-reduction
//! grid depends only on the problem size, so scheduling moves work, never
//! bits. This matrix covers the level-1 kernels (dot, norm2, axpy), the
//! CSR matvec, the full multilevel Fiedler solve and the recursive
//! spectral-bisection order across {1, 2, 4} threads.

use slpm_graph::grid::{Connectivity, GridSpec};
use slpm_linalg::fiedler::fiedler_pair_on;
use slpm_linalg::{CsrMatrix, FiedlerMethod, FiedlerOptions, FiedlerPair, Pool};
use slpm_serve::WorkerPool;
use spectral_lpm::{rsb_order_on, RsbOptions, SpectralConfig};

const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

/// Run `f` once per backend at the given thread count and return the
/// labelled results: scoped spawn pool, then persistent worker pool.
fn on_each_backend<T>(threads: usize, f: impl Fn(&Pool<'_>) -> T) -> Vec<(String, T)> {
    let scoped = f(&Pool::new(Some(threads)));
    let workers = WorkerPool::new(threads);
    let pooled = f(&workers.linalg_pool());
    vec![
        (format!("scoped T={threads}"), scoped),
        (format!("pooled T={threads}"), pooled),
    ]
}

#[test]
fn level1_kernels_and_matvec_match_serial_bitwise() {
    // Long enough that even the memory-bound level-1 kernels engage the
    // executor instead of staying on the caller thread.
    let n = slpm_linalg::parallel::LIGHT_SPAWN_MIN + 12_345;
    let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
    let y: Vec<f64> = (0..n).map(|i| (i as f64 * 0.11).cos()).collect();
    // Heavy-op threshold is lower; a modest grid Laplacian crosses it.
    let spec = GridSpec::new(&[160, 120]);
    let lap: CsrMatrix = spec.graph(Connectivity::Orthogonal).laplacian();
    let v: Vec<f64> = (0..lap.rows()).map(|i| (i as f64 * 0.73).sin()).collect();

    let serial = Pool::serial();
    let dot0 = serial.dot(&x, &y);
    let norm0 = serial.norm2(&x);
    let mut axpy0 = y.clone();
    serial.axpy(1.25, &x, &mut axpy0);
    let mut mv0 = vec![0.0; lap.rows()];
    serial.matvec_into(&lap, &v, &mut mv0);

    for threads in THREAD_COUNTS {
        for (label, (dot, norm, axpy, mv)) in on_each_backend(threads, |pool| {
            let mut a = y.clone();
            pool.axpy(1.25, &x, &mut a);
            let mut m = vec![0.0; lap.rows()];
            pool.matvec_into(&lap, &v, &mut m);
            (pool.dot(&x, &y), pool.norm2(&x), a, m)
        }) {
            assert_eq!(dot.to_bits(), dot0.to_bits(), "dot: {label}");
            assert_eq!(norm.to_bits(), norm0.to_bits(), "norm2: {label}");
            assert_eq!(axpy, axpy0, "axpy: {label}");
            assert_eq!(mv, mv0, "matvec: {label}");
        }
    }
}

#[test]
fn multilevel_fiedler_solve_matches_serial_bitwise() {
    // The full coarsen → project → refine eigensolver, not just kernels:
    // 48×32 is well above the default coarsest size, so the hierarchy,
    // the smoother and the PCG solves all run through the executor.
    let spec = GridSpec::new(&[48, 32]);
    let lap = spec.graph(Connectivity::Orthogonal).laplacian();
    let opts = FiedlerOptions {
        method: FiedlerMethod::Multilevel,
        ..Default::default()
    };
    let reference: FiedlerPair = fiedler_pair_on(&lap, &opts, &Pool::serial()).unwrap();
    assert!(reference.lambda2 > 0.0);

    for threads in THREAD_COUNTS {
        for (label, pair) in
            on_each_backend(threads, |pool| fiedler_pair_on(&lap, &opts, pool).unwrap())
        {
            assert_eq!(
                pair.lambda2.to_bits(),
                reference.lambda2.to_bits(),
                "lambda2: {label}"
            );
            assert_eq!(pair.vector, reference.vector, "vector: {label}");
        }
    }
}

#[test]
fn recursive_bisection_order_matches_serial_exactly() {
    // The hierarchy-reusing recursive bisection driver on top of it all:
    // identical ranks from every backend at every thread count.
    let spec = GridSpec::new(&[36, 24]);
    let graph = spec.graph(Connectivity::Orthogonal);
    let opts = RsbOptions {
        leaf_size: 8,
        config: SpectralConfig {
            fiedler: FiedlerOptions {
                method: FiedlerMethod::Multilevel,
                ..Default::default()
            },
            ..Default::default()
        },
        reuse_hierarchy: true,
    };
    let reference = rsb_order_on(&graph, &opts, &Pool::serial()).unwrap();

    for threads in THREAD_COUNTS {
        for (label, order) in
            on_each_backend(threads, |pool| rsb_order_on(&graph, &opts, pool).unwrap())
        {
            assert_eq!(order.ranks(), reference.ranks(), "rsb ranks: {label}");
        }
    }
}
