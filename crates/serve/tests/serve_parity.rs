//! Shard-, thread-, planner- and admission-invariance of the serving
//! engine.
//!
//! The engine's contract (the serving analogue of PR 3's threading-parity
//! guarantee): replaying the same deterministic workload over the same
//! linear order must produce **identical per-query result sets, page
//! counts, run counts and batch digest** for every combination of shard
//! count, thread count, partition policy, kNN planner and in-flight batch
//! count — scheduling moves work, never answers. Additionally, the
//! engine's per-query distinct-page accounting must equal what the plain
//! unsharded [`slpm_storage::PageStore::serve_query`] loop reads for the
//! same queries.
//!
//! Debug builds run a small grid; the release (tier-2) run adds a
//! 256×256 grid with the full 1 000-query acceptance workload, matching
//! `threading_parity.rs`'s release gating.

use slpm_graph::grid::GridSpec;
use slpm_querysim::mappings::curve_order;
use slpm_serve::engine::{EngineConfig, KnnPlanner, ServeEngine};
use slpm_serve::shard::Partition;
use slpm_serve::workload::{grid_points, mixed_workload, WorkloadConfig};
use slpm_sfc::HilbertCurve;
use slpm_storage::{PageLayout, PageMapper, PageStore};
use spectral_lpm::LinearOrder;

/// `(grid side, queries)` cases; sides are powers of two for Hilbert.
#[cfg(debug_assertions)]
const CASES: &[(usize, usize)] = &[(32, 120)];
#[cfg(not(debug_assertions))]
const CASES: &[(usize, usize)] = &[(64, 300), (256, 1000)];

fn hilbert_order(spec: &GridSpec) -> LinearOrder {
    let side = spec.dim(0) as u64;
    curve_order(
        spec,
        &HilbertCurve::from_side(spec.ndim(), side).expect("power-of-two side"),
    )
}

#[test]
fn results_identical_across_shards_threads_and_partitions() {
    for &(side, queries) in CASES {
        let spec = GridSpec::cube(side, 2);
        let points = grid_points(&spec);
        let order = hilbert_order(&spec);
        let workload = mixed_workload(
            &spec,
            &WorkloadConfig {
                queries,
                ..Default::default()
            },
        );
        let base = EngineConfig {
            buffer_pages: 32,
            ..Default::default()
        };
        let reference = ServeEngine::new(&points, &order, base)
            .run(&workload)
            .expect("no replay panic");
        assert_eq!(reference.outcomes.len(), queries);
        assert!(reference.total_results() > 0, "degenerate workload");
        for shards in [1usize, 4] {
            for threads in [1usize, 4] {
                for partition in [Partition::Contiguous, Partition::RoundRobin] {
                    let cfg = EngineConfig {
                        shards,
                        threads,
                        partition,
                        ..base
                    };
                    let engine = ServeEngine::new(&points, &order, cfg);
                    let report = engine.run(&workload).expect("no replay panic");
                    let label = format!("{side}x{side} S={shards} T={threads} {partition}");
                    assert_eq!(report.digest, reference.digest, "digest: {label}");
                    for (q, (a, b)) in report.outcomes.iter().zip(&reference.outcomes).enumerate() {
                        assert_eq!(a.results, b.results, "results of query {q}: {label}");
                        assert_eq!(a.pages, b.pages, "pages of query {q}: {label}");
                        assert_eq!(a.runs, b.runs, "runs of query {q}: {label}");
                    }
                    // Shard stats partition the batch exactly.
                    let routed: usize = report.shards.iter().map(|s| s.pages_routed).sum();
                    assert_eq!(routed, report.total_pages(), "routed pages: {label}");
                }
            }
        }
    }
}

#[test]
fn results_identical_across_planners_and_inflight_batches() {
    // The acceptance matrix: kNN result sets and batch digests bitwise
    // identical between expanding-ball and best-first planners, across
    // {1,4} shards × {1,4} threads × {1,4} in-flight batches.
    for &(side, queries) in CASES {
        let spec = GridSpec::cube(side, 2);
        let points = grid_points(&spec);
        let order = hilbert_order(&spec);
        let workload = mixed_workload(
            &spec,
            &WorkloadConfig {
                queries,
                ..Default::default()
            },
        );
        let base = EngineConfig {
            buffer_pages: 32,
            ..Default::default()
        };
        let reference = ServeEngine::new(&points, &order, base)
            .run(&workload)
            .expect("no replay panic");
        let mut best_first_nodes = 0usize;
        let mut expanding_nodes = 0usize;
        for planner in [KnnPlanner::BestFirst, KnnPlanner::ExpandingBall] {
            for shards in [1usize, 4] {
                for threads in [1usize, 4] {
                    for inflight in [1usize, 4] {
                        let cfg = EngineConfig {
                            shards,
                            threads,
                            knn_planner: planner,
                            ..base
                        };
                        let engine = ServeEngine::new(&points, &order, cfg);
                        let report = engine
                            .run_inflight(&workload, inflight)
                            .expect("no replay panic");
                        let label =
                            format!("{side}x{side} {planner} S={shards} T={threads} I={inflight}");
                        assert_eq!(report.digest, reference.digest, "digest: {label}");
                        let mut tree_cost = 0usize;
                        for (q, (a, b)) in
                            report.outcomes.iter().zip(&reference.outcomes).enumerate()
                        {
                            assert_eq!(a.results, b.results, "results of query {q}: {label}");
                            assert_eq!(a.pages, b.pages, "pages of query {q}: {label}");
                            assert_eq!(a.runs, b.runs, "runs of query {q}: {label}");
                            tree_cost += a.tree.nodes_visited + a.tree.leaves_visited;
                        }
                        // Tree costs depend only on the planner, not on
                        // sharding, threading or admission.
                        match planner {
                            KnnPlanner::BestFirst if best_first_nodes == 0 => {
                                best_first_nodes = tree_cost;
                            }
                            KnnPlanner::BestFirst => assert_eq!(tree_cost, best_first_nodes),
                            KnnPlanner::ExpandingBall if expanding_nodes == 0 => {
                                expanding_nodes = tree_cost;
                            }
                            KnnPlanner::ExpandingBall => assert_eq!(tree_cost, expanding_nodes),
                        }
                    }
                }
            }
        }
        // The point of the planner: strictly fewer node visits on the
        // same workload (range scans identical, kNN cheaper).
        assert!(
            best_first_nodes < expanding_nodes,
            "{side}x{side}: best-first {best_first_nodes} vs expanding {expanding_nodes}"
        );
    }
}

#[test]
fn engine_page_accounting_matches_plain_store_replay() {
    for &(side, queries) in CASES {
        let spec = GridSpec::cube(side, 2);
        let points = grid_points(&spec);
        let order = hilbert_order(&spec);
        let workload = mixed_workload(
            &spec,
            &WorkloadConfig {
                queries: queries.min(300),
                ..Default::default()
            },
        );
        let cfg = EngineConfig {
            shards: 4,
            threads: 4,
            ..Default::default()
        };
        let engine = ServeEngine::new(&points, &order, cfg);
        let report = engine.run(&workload).expect("no replay panic");
        // The classic single-threaded, single-shard accounting loop.
        let mapper = PageMapper::new(&order, PageLayout::new(cfg.records_per_page));
        let store = PageStore::build(&mapper, order.len(), 8);
        let mut direct_total = 0usize;
        for (outcome, _q) in report.outcomes.iter().zip(&workload) {
            let direct = store.serve_query(outcome.results.iter().copied());
            assert_eq!(outcome.pages, direct);
            direct_total += direct;
        }
        assert_eq!(report.total_pages(), direct_total);
        assert_eq!(store.total_reads(), direct_total);
    }
}
