//! Shard- and thread-count invariance of the serving engine.
//!
//! The engine's contract (the serving analogue of PR 3's threading-parity
//! guarantee): replaying the same deterministic workload over the same
//! linear order must produce **identical per-query result sets, page
//! counts, run counts and batch digest** for every combination of shard
//! count, thread count and partition policy — scheduling moves work,
//! never answers. Additionally, the engine's per-query distinct-page
//! accounting must equal what the plain unsharded
//! [`slpm_storage::PageStore::serve_query`] loop reads for the same
//! queries.
//!
//! Debug builds run a small grid; the release (tier-2) run adds a
//! 256×256 grid with the full 1 000-query acceptance workload, matching
//! `threading_parity.rs`'s release gating.

use slpm_graph::grid::GridSpec;
use slpm_querysim::mappings::curve_order;
use slpm_serve::engine::{EngineConfig, ServeEngine};
use slpm_serve::shard::Partition;
use slpm_serve::workload::{grid_points, mixed_workload, WorkloadConfig};
use slpm_sfc::HilbertCurve;
use slpm_storage::{PageLayout, PageMapper, PageStore};
use spectral_lpm::LinearOrder;

/// `(grid side, queries)` cases; sides are powers of two for Hilbert.
#[cfg(debug_assertions)]
const CASES: &[(usize, usize)] = &[(32, 120)];
#[cfg(not(debug_assertions))]
const CASES: &[(usize, usize)] = &[(64, 300), (256, 1000)];

fn hilbert_order(spec: &GridSpec) -> LinearOrder {
    let side = spec.dim(0) as u64;
    curve_order(
        spec,
        &HilbertCurve::from_side(spec.ndim(), side).expect("power-of-two side"),
    )
}

#[test]
fn results_identical_across_shards_threads_and_partitions() {
    for &(side, queries) in CASES {
        let spec = GridSpec::cube(side, 2);
        let points = grid_points(&spec);
        let order = hilbert_order(&spec);
        let workload = mixed_workload(
            &spec,
            &WorkloadConfig {
                queries,
                ..Default::default()
            },
        );
        let base = EngineConfig {
            buffer_pages: 32,
            ..Default::default()
        };
        let reference = ServeEngine::new(&points, &order, base).run(&workload);
        assert_eq!(reference.outcomes.len(), queries);
        assert!(reference.total_results() > 0, "degenerate workload");
        for shards in [1usize, 4] {
            for threads in [1usize, 4] {
                for partition in [Partition::Contiguous, Partition::RoundRobin] {
                    let cfg = EngineConfig {
                        shards,
                        threads,
                        partition,
                        ..base
                    };
                    let engine = ServeEngine::new(&points, &order, cfg);
                    let report = engine.run(&workload);
                    let label = format!("{side}x{side} S={shards} T={threads} {partition}");
                    assert_eq!(report.digest, reference.digest, "digest: {label}");
                    for (q, (a, b)) in report.outcomes.iter().zip(&reference.outcomes).enumerate() {
                        assert_eq!(a.results, b.results, "results of query {q}: {label}");
                        assert_eq!(a.pages, b.pages, "pages of query {q}: {label}");
                        assert_eq!(a.runs, b.runs, "runs of query {q}: {label}");
                    }
                    // Shard stats partition the batch exactly.
                    let routed: usize = report.shards.iter().map(|s| s.pages_routed).sum();
                    assert_eq!(routed, report.total_pages(), "routed pages: {label}");
                }
            }
        }
    }
}

#[test]
fn engine_page_accounting_matches_plain_store_replay() {
    for &(side, queries) in CASES {
        let spec = GridSpec::cube(side, 2);
        let points = grid_points(&spec);
        let order = hilbert_order(&spec);
        let workload = mixed_workload(
            &spec,
            &WorkloadConfig {
                queries: queries.min(300),
                ..Default::default()
            },
        );
        let cfg = EngineConfig {
            shards: 4,
            threads: 4,
            ..Default::default()
        };
        let engine = ServeEngine::new(&points, &order, cfg);
        let report = engine.run(&workload);
        // The classic single-threaded, single-shard accounting loop.
        let mapper = PageMapper::new(&order, PageLayout::new(cfg.records_per_page));
        let store = PageStore::build(&mapper, order.len(), 8);
        let mut direct_total = 0usize;
        for (outcome, _q) in report.outcomes.iter().zip(&workload) {
            let direct = store.serve_query(outcome.results.iter().copied());
            assert_eq!(outcome.pages, direct);
            direct_total += direct;
        }
        assert_eq!(report.total_pages(), direct_total);
        assert_eq!(store.total_reads(), direct_total);
    }
}
