//! Property tests for the fault plane: whatever seeded `FaultPlan`,
//! admission policy, shard count or thread count, (a) every fault-free
//! query's outcome is **bitwise identical** to the same stream run with
//! no faults injected (faults degrade coverage, never answers), and
//! (b) the degraded digest is a deterministic function of the plan —
//! identical across thread counts and repeat runs.

use proptest::prelude::*;
use slpm_graph::grid::GridSpec;
use slpm_serve::arrival::{ArrivalConfig, ArrivalShape};
use slpm_serve::engine::{EngineConfig, ServeEngine};
use slpm_serve::fault::FaultPlan;
use slpm_serve::health::BreakerState;
use slpm_serve::stream::{stream_serve, AdmissionPolicy, StreamConfig};
use slpm_serve::testing::with_watchdog;
use slpm_serve::workload::{grid_points, mixed_workload_labeled, WorkloadConfig};
use spectral_lpm::LinearOrder;

#[derive(Debug, Clone)]
struct Scenario {
    queries: usize,
    workload_seed: u64,
    fault_seed: u64,
    policy: AdmissionPolicy,
    shards: usize,
    threads: usize,
}

fn scenario() -> impl Strategy<Value = Scenario> {
    (
        (8usize..=40, 0u64..u64::MAX, 0u64..u64::MAX),
        0u8..2,
        (1usize..=3, 1usize..=3),
    )
        .prop_map(
            |((queries, workload_seed, fault_seed), block, (shards, threads))| Scenario {
                queries,
                workload_seed,
                fault_seed,
                policy: if block == 1 {
                    AdmissionPolicy::Block
                } else {
                    AdmissionPolicy::Shed
                },
                shards,
                threads,
            },
        )
}

fn stream_cfg(policy: AdmissionPolicy) -> StreamConfig {
    StreamConfig {
        arrival: ArrivalConfig::new(ArrivalShape::Poisson, 50_000.0, 7),
        queue_depth: 8,
        batch_delay_us: 50.0,
        policy,
        ..Default::default()
    }
}

fn engine_cfg(shards: usize, threads: usize) -> EngineConfig {
    EngineConfig {
        records_per_page: 4,
        fanout: 4,
        buffer_pages: 8,
        shards,
        threads,
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn fault_free_queries_are_bitwise_identical_to_an_unfaulted_run(s in scenario()) {
        let spec = GridSpec::cube(12, 2);
        let points = grid_points(&spec);
        let order = LinearOrder::identity(points.len());
        let labeled = mixed_workload_labeled(
            &spec,
            &WorkloadConfig {
                queries: s.queries,
                seed: s.workload_seed,
                knn_every: 4,
                k: 8,
            },
        );
        let (queries, labels): (Vec<_>, Vec<_>) = labeled.into_iter().unzip();
        let cfg = stream_cfg(s.policy);
        let plan = FaultPlan::seeded(s.fault_seed, s.shards);

        let clean = {
            let engine = ServeEngine::new(&points, &order, engine_cfg(s.shards, s.threads));
            stream_serve(&engine, &queries, &labels, &cfg).expect("no replay panic")
        };
        let faulted = {
            let engine = ServeEngine::new(&points, &order, engine_cfg(s.shards, s.threads));
            engine.inject_faults(plan.clone());
            stream_serve(&engine, &queries, &labels, &cfg).expect("injected faults degrade, not error")
        };

        // Fault penalties never touch admission: the admitted sequence is
        // identical, so the runs are outcome-aligned.
        prop_assert_eq!(&clean.admitted_idx, &faulted.admitted_idx);
        prop_assert_eq!(clean.slo.shed, faulted.slo.shed);
        // (a) Every fault-free query answers bitwise identically to the
        // clean run — the same (results, pages, runs) triple the digest
        // folds. (Buffer hit/miss splits may differ: degraded units skip
        // replay, so LRU state legitimately diverges on a faulted shard.)
        let mut saw_degraded = 0usize;
        for (a, b) in faulted.outcomes.iter().zip(&clean.outcomes) {
            if a.degraded_pages > 0 {
                saw_degraded += 1;
                continue;
            }
            prop_assert_eq!(&a.results, &b.results);
            prop_assert_eq!(a.pages, b.pages);
            prop_assert_eq!(a.runs, b.runs);
        }
        prop_assert_eq!(saw_degraded, faulted.slo.degraded);
        if faulted.coverage.is_clean() {
            prop_assert_eq!(faulted.digest, clean.digest);
            prop_assert_eq!(faulted.degraded_digest(), clean.digest);
        }

        // (b) The degraded digest is deterministic for a fixed plan:
        // a repeat run on a differently-threaded engine agrees bitwise.
        let other_threads = if s.threads == 1 { 3 } else { 1 };
        let repeat = {
            let engine = ServeEngine::new(&points, &order, engine_cfg(s.shards, other_threads));
            engine.inject_faults(plan);
            stream_serve(&engine, &queries, &labels, &cfg).expect("injected faults degrade, not error")
        };
        prop_assert_eq!(repeat.degraded_digest(), faulted.degraded_digest());
        prop_assert_eq!(&repeat.coverage, &faulted.coverage);
        prop_assert_eq!(repeat.trips, faulted.trips);
        prop_assert_eq!(repeat.slo, faulted.slo);
    }
}

#[test]
fn permanently_failed_shard_trips_within_threshold_and_the_rest_keep_serving() {
    with_watchdog(
        std::time::Duration::from_secs(60),
        "breaker trip under permanent failure",
        || {
            let spec = GridSpec::cube(12, 2);
            let points = grid_points(&spec);
            let order = LinearOrder::identity(points.len());
            let labeled = mixed_workload_labeled(
                &spec,
                &WorkloadConfig {
                    queries: 160,
                    seed: 11,
                    knn_every: 4,
                    k: 8,
                },
            );
            let (queries, labels): (Vec<_>, Vec<_>) = labeled.into_iter().unzip();
            let engine = ServeEngine::new(&points, &order, engine_cfg(4, 2));
            engine.inject_faults(FaultPlan::parse("kill!:0@0").unwrap());
            let cfg = stream_cfg(AdmissionPolicy::Shed);
            let report =
                stream_serve(&engine, &queries, &labels, &cfg).expect("degrades, not errors");

            // The breaker tripped (within its threshold: the snapshot's
            // consecutive-failure count never exceeds it), failover
            // swapped epochs, and shard 0 is the only degraded source.
            let snap = engine.health_snapshot();
            assert!(snap[0].trips >= 1, "{snap:?}");
            assert!(
                snap[0].state == BreakerState::Open || snap[0].state == BreakerState::HalfOpen,
                "a permanently dead shard cannot close its breaker: {snap:?}"
            );
            let threshold = engine.config().recovery.breaker_threshold;
            for b in &snap {
                assert!(b.consecutive_failures < threshold, "{snap:?}");
            }
            assert!(report.trips >= 1);
            assert!(report.epoch >= 1, "failover must swap epochs");
            assert!(report.slo.degraded > 0);
            assert!(
                report
                    .coverage
                    .degraded_units
                    .iter()
                    .all(|d| d.shard == 0 && !d.rank_ranges.is_empty()),
                "only the killed shard may degrade"
            );
            // The surviving shards keep answering: some queries are
            // entirely fault-free, and they dominate the admitted set
            // (shard 0 owns ~1/4 of the pages).
            assert!(report.slo.admitted - report.slo.degraded > report.slo.degraded);
            // Health of the untouched shards is pristine.
            for b in &snap[1..] {
                assert_eq!(b.trips, 0);
                assert_eq!(b.state, BreakerState::Closed);
            }
        },
    );
}
