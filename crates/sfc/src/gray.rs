//! The Gray-coded curve (Faloutsos 1986/88).
//!
//! Like Z-order, coordinates are bit-interleaved; but the interleaved words
//! are then visited in reflected-Gray-code order rather than numeric order,
//! so consecutive cells along the curve differ in exactly one interleaved
//! bit. This fixes some of Z-order's long jumps while remaining a fractal
//! quadrant-exhausting order.

use crate::bits;
use crate::traits::{CurveError, CurveKind, SpaceFillingCurve};

/// Gray-coded curve over a `2^bits`-sided hypercube in `ndim` dimensions.
///
/// `encode` returns the rank `i` such that the reflected Gray codeword
/// `G(i)` equals the bit-interleaved coordinates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GrayCurve {
    ndim: usize,
    bits: u32,
}

impl GrayCurve {
    /// Create a Gray curve on `ndim` dimensions of side `2^bits`.
    pub fn new(ndim: usize, bits: u32) -> Result<Self, CurveError> {
        if ndim == 0 || bits == 0 {
            return Err(CurveError::DegenerateSpace);
        }
        if ndim as u32 * bits > 63 {
            return Err(CurveError::TooManyBits { ndim, bits });
        }
        Ok(GrayCurve { ndim, bits })
    }

    /// Create from a side length, which must be a power of two.
    pub fn from_side(ndim: usize, side: u64) -> Result<Self, CurveError> {
        let bits = bits::log2_exact(side).ok_or(CurveError::NotPowerOfTwo { side })?;
        Self::new(ndim, bits)
    }
}

impl SpaceFillingCurve for GrayCurve {
    fn ndim(&self) -> usize {
        self.ndim
    }

    fn dims(&self) -> Vec<u64> {
        vec![1u64 << self.bits; self.ndim]
    }

    fn kind(&self) -> CurveKind {
        CurveKind::Gray
    }

    fn encode(&self, coords: &[u32]) -> u64 {
        debug_assert_eq!(coords.len(), self.ndim);
        bits::gray_decode(bits::interleave(coords, self.bits))
    }

    fn decode(&self, rank: u64) -> Vec<u32> {
        debug_assert!(rank < self.num_points());
        bits::deinterleave(bits::gray_encode(rank), self.ndim, self.bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        for (k, b) in [(1usize, 4u32), (2, 3), (4, 2), (5, 2)] {
            let c = GrayCurve::new(k, b).unwrap();
            for r in 0..c.num_points() {
                assert_eq!(c.encode(&c.decode(r)), r, "k={k} b={b} rank {r}");
            }
        }
    }

    #[test]
    fn consecutive_ranks_differ_in_one_interleaved_bit() {
        let c = GrayCurve::new(2, 3).unwrap();
        for r in 1..c.num_points() {
            let a = bits::interleave(&c.decode(r - 1), 3);
            let b = bits::interleave(&c.decode(r), 3);
            assert_eq!((a ^ b).count_ones(), 1);
        }
    }

    #[test]
    fn consecutive_cells_are_chebyshev_close_in_2d() {
        // One interleaved bit = one coordinate bit flips: the step is a
        // power-of-two jump along a single axis (not always distance 1 —
        // Gray is better than Z but not continuous).
        let c = GrayCurve::new(2, 2).unwrap();
        for r in 1..16 {
            let a = c.decode(r - 1);
            let b = c.decode(r);
            let changed: Vec<usize> = (0..2).filter(|&d| a[d] != b[d]).collect();
            assert_eq!(changed.len(), 1, "exactly one coordinate changes");
        }
    }

    #[test]
    fn gray_1d_is_gray_sequence() {
        let c = GrayCurve::new(1, 3).unwrap();
        let cells: Vec<u32> = (0..8).map(|r| c.decode(r)[0]).collect();
        assert_eq!(cells, vec![0, 1, 3, 2, 6, 7, 5, 4]);
    }

    #[test]
    fn differs_from_peano() {
        use crate::peano::PeanoCurve;
        let g = GrayCurve::new(2, 2).unwrap();
        let p = PeanoCurve::new(2, 2).unwrap();
        let gt = g.rank_table();
        let pt = p.rank_table();
        assert_ne!(gt, pt);
        // Both are permutations of 0..16.
        let mut sorted = gt.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..16).collect::<Vec<u64>>());
    }

    #[test]
    fn construction_errors() {
        assert!(GrayCurve::new(0, 1).is_err());
        assert!(GrayCurve::new(2, 0).is_err());
        assert!(GrayCurve::new(32, 2).is_err());
        assert!(GrayCurve::from_side(2, 5).is_err());
        assert!(GrayCurve::from_side(2, 4).is_ok());
    }

    #[test]
    fn kind_is_gray() {
        assert_eq!(GrayCurve::new(2, 1).unwrap().kind(), CurveKind::Gray);
    }
}
