//! The *actual* Peano curve (Giuseppe Peano, 1890) — base-3, serpentine.
//!
//! The database literature (and the reproduced paper) says "Peano curve"
//! for bit-interleaving Z-order; the original Peano curve is a different,
//! *continuous* construction on 3ⁿ-sided grids: every step moves to a
//! Manhattan-distance-1 neighbour, like the Hilbert curve but with radix-3
//! reflections instead of rotations. Included for completeness and as an
//! extra fractal baseline with genuinely different boundary behaviour.
//!
//! Construction (Peano's original digit formula, generalised to k
//! dimensions): write the rank in base 3 as digits `r₁ r₂ … r_{kp}`,
//! cycling through dimensions within each refinement level. The coordinate
//! digit produced by rank digit `r_m` (belonging to dimension d) is `r_m`
//! complemented (`x ↦ 2 − x`) once for every *earlier* rank digit of a
//! *different* dimension that is odd — i.e. reflected when the serpentine
//! has reversed direction along d.

use crate::traits::{CurveError, CurveKind, SpaceFillingCurve};

/// The original base-3 Peano curve over a `3^levels`-sided hypercube.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TruePeanoCurve {
    ndim: usize,
    levels: u32,
}

impl TruePeanoCurve {
    /// Create a Peano curve on `ndim` dimensions with side `3^levels`.
    pub fn new(ndim: usize, levels: u32) -> Result<Self, CurveError> {
        if ndim == 0 || levels == 0 {
            return Err(CurveError::DegenerateSpace);
        }
        // 3^(ndim·levels) must fit in u64 (≈ 3^40 max).
        let total_digits = ndim as u32 * levels;
        if total_digits > 39 {
            return Err(CurveError::TooManyBits { ndim, bits: levels });
        }
        Ok(TruePeanoCurve { ndim, levels })
    }

    /// Create from a side length, which must be a power of three.
    pub fn from_side(ndim: usize, side: u64) -> Result<Self, CurveError> {
        let mut s = side;
        let mut levels = 0u32;
        while s > 1 {
            if !s.is_multiple_of(3) {
                return Err(CurveError::NotPowerOfTwo { side });
            }
            s /= 3;
            levels += 1;
        }
        if levels == 0 {
            return Err(CurveError::DegenerateSpace);
        }
        Self::new(ndim, levels)
    }

    /// Side length `3^levels`.
    pub fn side(&self) -> u64 {
        3u64.pow(self.levels)
    }
}

impl SpaceFillingCurve for TruePeanoCurve {
    fn ndim(&self) -> usize {
        self.ndim
    }

    fn dims(&self) -> Vec<u64> {
        vec![self.side(); self.ndim]
    }

    fn kind(&self) -> CurveKind {
        CurveKind::TruePeano
    }

    fn encode(&self, coords: &[u32]) -> u64 {
        debug_assert_eq!(coords.len(), self.ndim);
        let k = self.ndim;
        let p = self.levels as usize;
        // Coordinate digits, most significant first.
        let mut cdig = vec![vec![0u8; p]; k];
        for (d, &c) in coords.iter().enumerate() {
            debug_assert!((c as u64) < self.side());
            let mut v = c as u64;
            for i in (0..p).rev() {
                cdig[d][i] = (v % 3) as u8;
                v /= 3;
            }
        }
        // Produce rank digits in (level, dim) order, tracking for each
        // dimension the parity of previously emitted rank digits of the
        // *other* dimensions.
        let mut sum_other = vec![0u32; k];
        let mut rank = 0u64;
        for i in 0..p {
            for d in 0..k {
                let a = cdig[d][i];
                let r = if sum_other[d] % 2 == 1 { 2 - a } else { a };
                rank = rank * 3 + r as u64;
                for (e, s) in sum_other.iter_mut().enumerate() {
                    if e != d {
                        *s += r as u32;
                    }
                }
            }
        }
        rank
    }

    fn decode(&self, rank: u64) -> Vec<u32> {
        debug_assert!(rank < self.num_points());
        let k = self.ndim;
        let p = self.levels as usize;
        // Extract rank digits most significant first.
        let total = k * p;
        let mut rdig = vec![0u8; total];
        let mut v = rank;
        for i in (0..total).rev() {
            rdig[i] = (v % 3) as u8;
            v /= 3;
        }
        let mut sum_other = vec![0u32; k];
        let mut coords = vec![0u32; k];
        let mut m = 0usize;
        for _level in 0..p {
            for d in 0..k {
                let r = rdig[m];
                m += 1;
                let a = if sum_other[d] % 2 == 1 { 2 - r } else { r };
                coords[d] = coords[d] * 3 + a as u32;
                for (e, s) in sum_other.iter_mut().enumerate() {
                    if e != d {
                        *s += r as u32;
                    }
                }
            }
        }
        coords
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manhattan(a: &[u32], b: &[u32]) -> u64 {
        a.iter()
            .zip(b.iter())
            .map(|(&x, &y)| (x as i64 - y as i64).unsigned_abs())
            .sum()
    }

    #[test]
    fn first_level_2d_is_serpentine() {
        // One level in 2-D: the 3×3 serpentine starting at the origin.
        let c = TruePeanoCurve::new(2, 1).unwrap();
        let cells: Vec<Vec<u32>> = (0..9).map(|r| c.decode(r)).collect();
        assert_eq!(cells[0], vec![0, 0]);
        // Unit steps throughout.
        for w in cells.windows(2) {
            assert_eq!(manhattan(&w[0], &w[1]), 1, "{w:?}");
        }
        // Visits all 9 cells.
        let mut sorted = cells.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 9);
    }

    #[test]
    fn roundtrip_various_shapes() {
        for (k, p) in [(1usize, 3u32), (2, 2), (3, 2), (4, 1)] {
            let c = TruePeanoCurve::new(k, p).unwrap();
            for r in 0..c.num_points() {
                let coords = c.decode(r);
                assert_eq!(c.encode(&coords), r, "k={k} p={p} rank {r}");
            }
        }
    }

    #[test]
    fn continuity_unit_steps() {
        // The defining property Peano proved in 1890: the curve is
        // continuous — consecutive ranks are Manhattan-distance-1 apart.
        for (k, p) in [(2usize, 2u32), (2, 3), (3, 2)] {
            let c = TruePeanoCurve::new(k, p).unwrap();
            let mut prev = c.decode(0);
            for r in 1..c.num_points() {
                let cur = c.decode(r);
                assert_eq!(manhattan(&prev, &cur), 1, "k={k} p={p}: jump at rank {r}");
                prev = cur;
            }
        }
    }

    #[test]
    fn start_and_end_corners_2d() {
        // The 2-D Peano curve runs from (0,0) to (side−1, side−1).
        let c = TruePeanoCurve::new(2, 2).unwrap();
        assert_eq!(c.decode(0), vec![0, 0]);
        assert_eq!(c.decode(80), vec![8, 8]);
    }

    #[test]
    fn construction_errors() {
        assert!(TruePeanoCurve::new(0, 1).is_err());
        assert!(TruePeanoCurve::new(2, 0).is_err());
        assert!(TruePeanoCurve::new(8, 8).is_err());
        assert!(TruePeanoCurve::from_side(2, 8).is_err());
        assert_eq!(TruePeanoCurve::from_side(2, 27).unwrap().side(), 27);
        assert!(TruePeanoCurve::from_side(2, 1).is_err());
    }

    #[test]
    fn differs_from_z_order_peano() {
        // Same name in the literature, very different curve: compare on a
        // conceptual level — the true Peano is continuous, Z-order is not.
        let c = TruePeanoCurve::new(2, 2).unwrap();
        let mut max_step = 0;
        let mut prev = c.decode(0);
        for r in 1..81 {
            let cur = c.decode(r);
            max_step = max_step.max(manhattan(&prev, &cur));
            prev = cur;
        }
        assert_eq!(max_step, 1);
    }
}
