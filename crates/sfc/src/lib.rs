//! Space-filling curves in arbitrary dimension.
//!
//! These are the *fractal* locality-preserving mappings the paper argues
//! against (Section 2) plus the non-fractal row-major Sweep baseline used in
//! its experiments (Section 5):
//!
//! * [`SweepCurve`] — row-major order, arbitrary extents;
//! * [`SnakeCurve`] — boustrophedon order (row-major with alternating
//!   direction), arbitrary extents; an extra non-fractal baseline;
//! * [`PeanoCurve`] — bit-interleaving Z-order (what the database
//!   literature of the period, and this paper, call the "Peano" curve,
//!   after Orenstein–Merrett), power-of-two extents;
//! * [`GrayCurve`] — the Gray-coded curve of Faloutsos: Z-order indices
//!   run through the reflected Gray code, power-of-two extents;
//! * [`HilbertCurve`] — the k-dimensional Hilbert curve via Skilling's
//!   transpose algorithm, power-of-two extents.
//!
//! All curves implement [`SpaceFillingCurve`]: a bijection between
//! coordinate tuples and ranks `0..num_points`, with `encode`/`decode`
//! inverses. Property tests in `tests/` verify bijectivity for every curve
//! and, for the Hilbert curve, unit-step continuity (consecutive ranks are
//! at Manhattan distance exactly 1 — the defining fractal property).
//!
//! ```
//! use slpm_sfc::{HilbertCurve, SpaceFillingCurve};
//!
//! let curve = HilbertCurve::from_side(2, 8).unwrap(); // 8×8 grid
//! let rank = curve.encode(&[3, 4]);
//! assert_eq!(curve.decode(rank), vec![3, 4]);
//! assert_eq!(curve.num_points(), 64);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bits;
pub mod gray;
pub mod hilbert;
pub mod peano;
pub mod sweep;
pub mod traits;
pub mod true_peano;

pub use gray::GrayCurve;
pub use hilbert::HilbertCurve;
pub use peano::PeanoCurve;
pub use sweep::{SnakeCurve, SweepCurve};
pub use traits::{CurveError, CurveKind, SpaceFillingCurve};
pub use true_peano::TruePeanoCurve;
