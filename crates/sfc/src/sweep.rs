//! The non-fractal scan orders: row-major Sweep and boustrophedon Snake.

use crate::traits::{CurveError, CurveKind, SpaceFillingCurve};

/// Row-major scan order — the paper's "Sweep" baseline.
///
/// In 2-D this visits row 0 left-to-right, then row 1 left-to-right, and so
/// on: excellent locality along the fastest-varying dimension, terrible
/// along the slowest (the asymmetry Figure 5b quantifies).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepCurve {
    dims: Vec<u64>,
}

impl SweepCurve {
    /// Create a sweep order over arbitrary (positive) extents.
    pub fn new(dims: &[u64]) -> Result<Self, CurveError> {
        if dims.is_empty() || dims.contains(&0) {
            return Err(CurveError::DegenerateSpace);
        }
        let total_bits: u32 = dims.iter().map(|d| 64 - (d - 1).leading_zeros()).sum();
        if total_bits > 63 {
            return Err(CurveError::TooManyBits {
                ndim: dims.len(),
                bits: total_bits / dims.len() as u32,
            });
        }
        Ok(SweepCurve {
            dims: dims.to_vec(),
        })
    }
}

impl SpaceFillingCurve for SweepCurve {
    fn ndim(&self) -> usize {
        self.dims.len()
    }

    fn dims(&self) -> Vec<u64> {
        self.dims.clone()
    }

    fn kind(&self) -> CurveKind {
        CurveKind::Sweep
    }

    fn encode(&self, coords: &[u32]) -> u64 {
        debug_assert_eq!(coords.len(), self.dims.len());
        let mut rank = 0u64;
        for (d, &c) in coords.iter().enumerate() {
            debug_assert!((c as u64) < self.dims[d]);
            rank = rank * self.dims[d] + c as u64;
        }
        rank
    }

    fn decode(&self, mut rank: u64) -> Vec<u32> {
        let k = self.dims.len();
        let mut coords = vec![0u32; k];
        for d in (0..k).rev() {
            coords[d] = (rank % self.dims[d]) as u32;
            rank /= self.dims[d];
        }
        coords
    }
}

/// Boustrophedon ("snake") scan: row-major, but every other row is visited
/// in reverse so consecutive ranks are always at Manhattan distance 1.
///
/// Not part of the paper's comparison set; included because it is the
/// strongest *non-fractal, non-spectral* baseline — it fixes Sweep's
/// discontinuity at row ends while keeping its cross-row behaviour.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnakeCurve {
    dims: Vec<u64>,
}

impl SnakeCurve {
    /// Create a snake order over arbitrary (positive) extents.
    pub fn new(dims: &[u64]) -> Result<Self, CurveError> {
        // Same domain restrictions as Sweep.
        SweepCurve::new(dims).map(|s| SnakeCurve { dims: s.dims })
    }
}

impl SpaceFillingCurve for SnakeCurve {
    fn ndim(&self) -> usize {
        self.dims.len()
    }

    fn dims(&self) -> Vec<u64> {
        self.dims.clone()
    }

    fn kind(&self) -> CurveKind {
        CurveKind::Snake
    }

    fn encode(&self, coords: &[u32]) -> u64 {
        debug_assert_eq!(coords.len(), self.dims.len());
        // Reflected mixed-radix Gray construction, innermost dimension
        // first: rank(c_d..) = c_d · R + (rank(rest) reflected when c_d is
        // odd), R = ∏ dims[d+1..]. Reflecting the *remainder* (not the
        // digits) is what makes consecutive ranks unit steps.
        let k = self.dims.len();
        let mut rank = 0u64;
        let mut r_suffix = 1u64;
        for d in (0..k).rev() {
            let digit = coords[d] as u64;
            debug_assert!(digit < self.dims[d]);
            let inner = if digit % 2 == 1 {
                r_suffix - 1 - rank
            } else {
                rank
            };
            rank = digit * r_suffix + inner;
            r_suffix *= self.dims[d];
        }
        rank
    }

    fn decode(&self, mut rank: u64) -> Vec<u32> {
        let k = self.dims.len();
        let mut coords = vec![0u32; k];
        let mut r_suffix: u64 = self.dims.iter().product();
        for d in 0..k {
            r_suffix /= self.dims[d];
            let digit = rank / r_suffix;
            coords[d] = digit as u32;
            rank %= r_suffix;
            if digit % 2 == 1 {
                // The inner sequence runs reversed under an odd digit.
                rank = r_suffix - 1 - rank;
            }
        }
        coords
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_2d_row_major() {
        let c = SweepCurve::new(&[3, 4]).unwrap();
        assert_eq!(c.encode(&[0, 0]), 0);
        assert_eq!(c.encode(&[0, 3]), 3);
        assert_eq!(c.encode(&[1, 0]), 4);
        assert_eq!(c.encode(&[2, 3]), 11);
        assert_eq!(c.num_points(), 12);
        for r in 0..12 {
            assert_eq!(c.encode(&c.decode(r)), r);
        }
    }

    #[test]
    fn sweep_rejects_degenerate() {
        assert_eq!(
            SweepCurve::new(&[]).unwrap_err(),
            CurveError::DegenerateSpace
        );
        assert_eq!(
            SweepCurve::new(&[4, 0]).unwrap_err(),
            CurveError::DegenerateSpace
        );
    }

    #[test]
    fn sweep_rejects_overflow() {
        assert!(matches!(
            SweepCurve::new(&[u64::MAX / 2; 2]),
            Err(CurveError::TooManyBits { .. })
        ));
    }

    #[test]
    fn snake_2d_is_boustrophedon() {
        let c = SnakeCurve::new(&[3, 3]).unwrap();
        // Row 0 forward: (0,0) (0,1) (0,2); row 1 reversed; row 2 forward.
        let order: Vec<Vec<u32>> = (0..9).map(|r| c.decode(r)).collect();
        assert_eq!(
            order,
            vec![
                vec![0, 0],
                vec![0, 1],
                vec![0, 2],
                vec![1, 2],
                vec![1, 1],
                vec![1, 0],
                vec![2, 0],
                vec![2, 1],
                vec![2, 2],
            ]
        );
    }

    #[test]
    fn snake_consecutive_ranks_are_adjacent() {
        for dims in [vec![4u64, 4], vec![3, 5], vec![2, 3, 4], vec![3, 3, 3, 3]] {
            let c = SnakeCurve::new(&dims).unwrap();
            let n = c.num_points();
            for r in 1..n {
                let a = c.decode(r - 1);
                let b = c.decode(r);
                let dist: u64 = a
                    .iter()
                    .zip(b.iter())
                    .map(|(&x, &y)| (x as i64 - y as i64).unsigned_abs())
                    .sum();
                assert_eq!(
                    dist,
                    1,
                    "dims {dims:?}: ranks {} and {r} not adjacent",
                    r - 1
                );
            }
        }
    }

    #[test]
    fn snake_roundtrip() {
        for dims in [vec![5u64], vec![4, 6], vec![2, 2, 2, 2, 2]] {
            let c = SnakeCurve::new(&dims).unwrap();
            for r in 0..c.num_points() {
                assert_eq!(c.encode(&c.decode(r)), r, "dims {dims:?} rank {r}");
            }
        }
    }

    #[test]
    fn sweep_kind_and_dims() {
        let c = SweepCurve::new(&[2, 2]).unwrap();
        assert_eq!(c.kind(), CurveKind::Sweep);
        assert_eq!(c.dims(), vec![2, 2]);
        assert_eq!(c.ndim(), 2);
        let s = SnakeCurve::new(&[2, 2]).unwrap();
        assert_eq!(s.kind(), CurveKind::Snake);
    }

    #[test]
    fn rank_table_matches_encode() {
        let c = SweepCurve::new(&[3, 2]).unwrap();
        let table = c.rank_table();
        // Sweep's rank table over row-major indexing is the identity.
        assert_eq!(table, (0..6).collect::<Vec<u64>>());
        let s = SnakeCurve::new(&[2, 3]).unwrap();
        let table = s.rank_table();
        assert_eq!(table, vec![0, 1, 2, 5, 4, 3]);
    }
}
