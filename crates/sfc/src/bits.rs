//! Bit-twiddling primitives shared by the power-of-two curves.

/// Interleave the low `bits` bits of each coordinate into a Morton word.
///
/// Coordinate 0 contributes the **most significant** bit of every group, so
/// the resulting order sorts first by coordinate 0's top bit — matching the
/// row-major orientation of [`crate::sweep::SweepCurve`] and the quadrant
/// numbering in the paper's Figure 1.
///
/// Output bit `(bits − 1 − b) · k + i` (counting groups from the top) holds
/// bit `b` of coordinate `i`.
pub fn interleave(coords: &[u32], bits: u32) -> u64 {
    let k = coords.len();
    debug_assert!(k as u32 * bits <= 63, "interleave overflow");
    let mut out = 0u64;
    for b in (0..bits).rev() {
        for (i, &c) in coords.iter().enumerate() {
            let bit = ((c >> b) & 1) as u64;
            let pos = (bits - 1 - b) as usize * k + i;
            let shift = (bits as usize * k - 1) - pos;
            out |= bit << shift;
        }
    }
    out
}

/// Inverse of [`interleave`].
pub fn deinterleave(code: u64, ndim: usize, bits: u32) -> Vec<u32> {
    let mut coords = vec![0u32; ndim];
    for b in (0..bits).rev() {
        for (i, c) in coords.iter_mut().enumerate() {
            let pos = (bits - 1 - b) as usize * ndim + i;
            let shift = (bits as usize * ndim - 1) - pos;
            let bit = ((code >> shift) & 1) as u32;
            *c |= bit << b;
        }
    }
    coords
}

/// Binary-reflected Gray code: `g = b ⊕ (b ≫ 1)`.
#[inline]
pub fn gray_encode(b: u64) -> u64 {
    b ^ (b >> 1)
}

/// Inverse Gray code: the rank `i` such that `gray_encode(i) == g`.
#[inline]
pub fn gray_decode(mut g: u64) -> u64 {
    let mut b = g;
    loop {
        g >>= 1;
        if g == 0 {
            break;
        }
        b ^= g;
    }
    b
}

/// Number of bits needed to represent `side − 1` (i.e. `log2` of a
/// power-of-two side). Returns `None` when `side` is not a power of two.
pub fn log2_exact(side: u64) -> Option<u32> {
    if side == 0 || !side.is_power_of_two() {
        None
    } else {
        Some(side.trailing_zeros())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interleave_2d_examples() {
        // coords (x, y) with 2 bits: x=3 (11), y=0 (00) → bits x1 y1 x0 y0
        // = 1010 = 10.
        assert_eq!(interleave(&[3, 0], 2), 0b1010);
        assert_eq!(interleave(&[0, 3], 2), 0b0101);
        assert_eq!(interleave(&[3, 3], 2), 0b1111);
        assert_eq!(interleave(&[0, 0], 2), 0);
        // First coordinate owns the top bit: (1,0) with 1 bit = 2.
        assert_eq!(interleave(&[1, 0], 1), 2);
        assert_eq!(interleave(&[0, 1], 1), 1);
    }

    #[test]
    fn interleave_roundtrip_3d() {
        for code in 0..512u64 {
            let coords = deinterleave(code, 3, 3);
            assert_eq!(interleave(&coords, 3), code);
        }
    }

    #[test]
    fn interleave_roundtrip_various_shapes() {
        for (k, bits) in [(1usize, 6u32), (2, 4), (4, 3), (5, 2), (6, 2)] {
            let n = 1u64 << (k as u32 * bits);
            let step = (n / 257).max(1);
            let mut code = 0u64;
            while code < n {
                let coords = deinterleave(code, k, bits);
                assert!(coords.iter().all(|&c| c < (1 << bits)));
                assert_eq!(interleave(&coords, bits), code, "k={k} bits={bits}");
                code += step;
            }
        }
    }

    #[test]
    fn gray_code_basics() {
        let seq: Vec<u64> = (0..8).map(gray_encode).collect();
        assert_eq!(seq, vec![0, 1, 3, 2, 6, 7, 5, 4]);
        for i in 0..256u64 {
            assert_eq!(gray_decode(gray_encode(i)), i);
        }
        // Consecutive Gray codes differ in exactly one bit.
        for i in 1..256u64 {
            let diff = gray_encode(i) ^ gray_encode(i - 1);
            assert_eq!(diff.count_ones(), 1);
        }
    }

    #[test]
    fn log2_exact_powers() {
        assert_eq!(log2_exact(1), Some(0));
        assert_eq!(log2_exact(2), Some(1));
        assert_eq!(log2_exact(16), Some(4));
        assert_eq!(log2_exact(0), None);
        assert_eq!(log2_exact(6), None);
    }
}
