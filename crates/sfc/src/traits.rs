//! The [`SpaceFillingCurve`] trait and curve taxonomy.

use std::fmt;

/// Identifies a curve family; used by experiment drivers to sweep over all
/// mappings uniformly and label output rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CurveKind {
    /// Row-major scan (the paper's non-fractal "Sweep" baseline).
    Sweep,
    /// Boustrophedon scan (extra non-fractal baseline, not in the paper).
    Snake,
    /// Bit-interleaving Z-order ("Peano" in the paper's terminology).
    Peano,
    /// The original base-3 Peano curve (1890) — continuous, radix-3.
    TruePeano,
    /// Gray-coded Z-order (Faloutsos' Gray curve).
    Gray,
    /// The Hilbert curve.
    Hilbert,
}

impl CurveKind {
    /// All curve kinds the paper's experiments sweep over.
    pub const PAPER_SET: [CurveKind; 4] = [
        CurveKind::Sweep,
        CurveKind::Peano,
        CurveKind::Gray,
        CurveKind::Hilbert,
    ];

    /// Whether the curve is a fractal (recursive quadrant-exhausting)
    /// mapping — the class the paper argues against.
    pub fn is_fractal(self) -> bool {
        matches!(
            self,
            CurveKind::Peano | CurveKind::TruePeano | CurveKind::Gray | CurveKind::Hilbert
        )
    }
}

impl fmt::Display for CurveKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CurveKind::Sweep => "Sweep",
            CurveKind::Snake => "Snake",
            CurveKind::Peano => "Peano",
            CurveKind::TruePeano => "TruePeano",
            CurveKind::Gray => "Gray",
            CurveKind::Hilbert => "Hilbert",
        };
        f.write_str(s)
    }
}

/// Errors from curve construction or use.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CurveError {
    /// The requested grid side is not a power of two (required by the
    /// recursive curves).
    NotPowerOfTwo {
        /// Offending side length.
        side: u64,
    },
    /// Total bits (`ndim × bits`) would overflow the 63-bit code budget.
    TooManyBits {
        /// Dimensions requested.
        ndim: usize,
        /// Bits per dimension requested.
        bits: u32,
    },
    /// Zero dimensions or zero bits requested.
    DegenerateSpace,
}

impl fmt::Display for CurveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CurveError::NotPowerOfTwo { side } => {
                write!(f, "grid side {side} is not a power of two")
            }
            CurveError::TooManyBits { ndim, bits } => {
                write!(
                    f,
                    "{ndim} dims × {bits} bits exceeds the 63-bit code budget"
                )
            }
            CurveError::DegenerateSpace => write!(f, "curve space must be non-degenerate"),
        }
    }
}

impl std::error::Error for CurveError {}

/// A bijection between the points of a finite k-dimensional grid and the
/// ranks `0..num_points()` — a locality-preserving mapping candidate.
pub trait SpaceFillingCurve {
    /// Dimensionality of the domain.
    fn ndim(&self) -> usize;

    /// Per-dimension extents of the domain.
    fn dims(&self) -> Vec<u64>;

    /// Total number of points (product of extents).
    fn num_points(&self) -> u64 {
        self.dims().iter().product()
    }

    /// Which family this curve belongs to.
    fn kind(&self) -> CurveKind;

    /// Map a coordinate tuple to its rank along the curve.
    ///
    /// # Panics
    /// May panic (debug) when `coords` is out of range; callers iterate
    /// over the declared domain.
    fn encode(&self, coords: &[u32]) -> u64;

    /// Map a rank back to its coordinate tuple. Inverse of `encode`.
    fn decode(&self, rank: u64) -> Vec<u32>;

    /// The full rank table indexed by row-major point index — the form the
    /// experiment layer consumes. Provided for convenience; O(num_points).
    fn rank_table(&self) -> Vec<u64> {
        let dims = self.dims();
        let n = self.num_points();
        let mut table = vec![0u64; n as usize];
        // Row-major enumeration of coordinates.
        let k = self.ndim();
        let mut coords = vec![0u32; k];
        for (row_major, slot) in table.iter_mut().enumerate().take(n as usize) {
            let _ = row_major;
            *slot = self.encode(&coords);
            // Odometer increment, last dimension fastest.
            for d in (0..k).rev() {
                coords[d] += 1;
                if (coords[d] as u64) < dims[d] {
                    break;
                }
                coords[d] = 0;
            }
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_display_and_fractal_flag() {
        assert_eq!(CurveKind::Hilbert.to_string(), "Hilbert");
        assert!(CurveKind::Hilbert.is_fractal());
        assert!(CurveKind::Peano.is_fractal());
        assert!(CurveKind::Gray.is_fractal());
        assert!(!CurveKind::Sweep.is_fractal());
        assert!(!CurveKind::Snake.is_fractal());
    }

    #[test]
    fn paper_set_contents() {
        assert_eq!(CurveKind::PAPER_SET.len(), 4);
        assert!(!CurveKind::PAPER_SET.contains(&CurveKind::Snake));
    }

    #[test]
    fn error_display() {
        assert!(CurveError::NotPowerOfTwo { side: 6 }
            .to_string()
            .contains("6"));
        assert!(CurveError::TooManyBits { ndim: 9, bits: 8 }
            .to_string()
            .contains("63-bit"));
    }
}
