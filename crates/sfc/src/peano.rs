//! The Z-order / Morton curve ("Peano" in the paper's terminology).
//!
//! The database literature of the era (Orenstein–Merrett and the papers
//! citing them, including this one) calls bit-interleaving Z-order the
//! "Peano" curve. It visits the four quadrants of a 2-D space in an
//! N/Z-shaped pattern recursively — the canonical example of the fractal
//! boundary effect: the jump between quadrants can traverse the whole
//! space.

use crate::bits;
use crate::traits::{CurveError, CurveKind, SpaceFillingCurve};

/// Bit-interleaving Z-order over a `2^bits`-sided hypercube in `ndim`
/// dimensions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeanoCurve {
    ndim: usize,
    bits: u32,
}

impl PeanoCurve {
    /// Create a Z-order curve on `ndim` dimensions of side `2^bits`.
    pub fn new(ndim: usize, bits: u32) -> Result<Self, CurveError> {
        if ndim == 0 || bits == 0 {
            return Err(CurveError::DegenerateSpace);
        }
        if ndim as u32 * bits > 63 {
            return Err(CurveError::TooManyBits { ndim, bits });
        }
        Ok(PeanoCurve { ndim, bits })
    }

    /// Create from a side length, which must be a power of two.
    pub fn from_side(ndim: usize, side: u64) -> Result<Self, CurveError> {
        let bits = bits::log2_exact(side).ok_or(CurveError::NotPowerOfTwo { side })?;
        Self::new(ndim, bits)
    }

    /// Bits per dimension.
    pub fn bits(&self) -> u32 {
        self.bits
    }
}

impl SpaceFillingCurve for PeanoCurve {
    fn ndim(&self) -> usize {
        self.ndim
    }

    fn dims(&self) -> Vec<u64> {
        vec![1u64 << self.bits; self.ndim]
    }

    fn kind(&self) -> CurveKind {
        CurveKind::Peano
    }

    fn encode(&self, coords: &[u32]) -> u64 {
        debug_assert_eq!(coords.len(), self.ndim);
        debug_assert!(coords.iter().all(|&c| (c as u64) < (1u64 << self.bits)));
        bits::interleave(coords, self.bits)
    }

    fn decode(&self, rank: u64) -> Vec<u32> {
        debug_assert!(rank < self.num_points());
        bits::deinterleave(rank, self.ndim, self.bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn z_order_4x4_layout() {
        // With coordinate 0 owning the high bit, the 4×4 Z-order is:
        //   c1→  0   1   2   3
        // c0=0:  0   1   4   5
        // c0=1:  2   3   6   7
        // c0=2:  8   9  12  13
        // c0=3: 10  11  14  15
        let c = PeanoCurve::new(2, 2).unwrap();
        let expected = [
            [0u64, 1, 4, 5],
            [2, 3, 6, 7],
            [8, 9, 12, 13],
            [10, 11, 14, 15],
        ];
        for (x0, row) in expected.iter().enumerate() {
            for (x1, &want) in row.iter().enumerate() {
                assert_eq!(c.encode(&[x0 as u32, x1 as u32]), want);
            }
        }
    }

    #[test]
    fn roundtrip_2d_and_5d() {
        for (k, b) in [(2usize, 3u32), (5, 2)] {
            let c = PeanoCurve::new(k, b).unwrap();
            for r in 0..c.num_points() {
                assert_eq!(c.encode(&c.decode(r)), r);
            }
        }
    }

    #[test]
    fn quadrant_exhaustion() {
        // The fractal property: all of quadrant 0 (both top bits 0) comes
        // before any point of quadrant 1, etc.
        let c = PeanoCurve::new(2, 3).unwrap();
        let side = 8u32;
        let quadrant = |x: u32, y: u32| (x / 4) * 2 + (y / 4);
        let mut last_quadrant_max = [0u64; 4];
        let mut quadrant_min = [u64::MAX; 4];
        for x in 0..side {
            for y in 0..side {
                let q = quadrant(x, y) as usize;
                let r = c.encode(&[x, y]);
                last_quadrant_max[q] = last_quadrant_max[q].max(r);
                quadrant_min[q] = quadrant_min[q].min(r);
            }
        }
        for q in 1..4 {
            assert!(
                quadrant_min[q] > last_quadrant_max[q - 1],
                "quadrant {q} starts before quadrant {} ends",
                q - 1
            );
        }
    }

    #[test]
    fn construction_errors() {
        assert_eq!(
            PeanoCurve::new(0, 2).unwrap_err(),
            CurveError::DegenerateSpace
        );
        assert_eq!(
            PeanoCurve::new(2, 0).unwrap_err(),
            CurveError::DegenerateSpace
        );
        assert!(matches!(
            PeanoCurve::new(8, 8),
            Err(CurveError::TooManyBits { .. })
        ));
        assert!(matches!(
            PeanoCurve::from_side(2, 6),
            Err(CurveError::NotPowerOfTwo { side: 6 })
        ));
        assert_eq!(PeanoCurve::from_side(2, 8).unwrap().bits(), 3);
    }

    #[test]
    fn dims_and_kind() {
        let c = PeanoCurve::new(3, 2).unwrap();
        assert_eq!(c.dims(), vec![4, 4, 4]);
        assert_eq!(c.num_points(), 64);
        assert_eq!(c.kind(), CurveKind::Peano);
    }
}
