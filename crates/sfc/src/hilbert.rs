//! The k-dimensional Hilbert curve.
//!
//! Implementation of John Skilling's transpose algorithm ("Programming the
//! Hilbert curve", AIP Conf. Proc. 707, 2004): the Hilbert index is kept in
//! *transposed* form — `ndim` words each holding `bits` bits, bit `b` of
//! word `i` being index bit `b·ndim + (ndim−1−i)` — and converted to/from
//! coordinates with O(ndim·bits) bit operations. The Hilbert curve is the
//! best-behaved fractal order: consecutive ranks are always at Manhattan
//! distance exactly 1 (verified by tests below), which is why it is the
//! strongest fractal competitor in the paper's experiments.

use crate::bits;
use crate::traits::{CurveError, CurveKind, SpaceFillingCurve};

/// Hilbert curve over a `2^bits`-sided hypercube in `ndim` dimensions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HilbertCurve {
    ndim: usize,
    bits: u32,
}

impl HilbertCurve {
    /// Create a Hilbert curve on `ndim` dimensions of side `2^bits`.
    pub fn new(ndim: usize, bits: u32) -> Result<Self, CurveError> {
        if ndim == 0 || bits == 0 {
            return Err(CurveError::DegenerateSpace);
        }
        if ndim as u32 * bits > 63 {
            return Err(CurveError::TooManyBits { ndim, bits });
        }
        Ok(HilbertCurve { ndim, bits })
    }

    /// Create from a side length, which must be a power of two.
    pub fn from_side(ndim: usize, side: u64) -> Result<Self, CurveError> {
        let bits = bits::log2_exact(side).ok_or(CurveError::NotPowerOfTwo { side })?;
        Self::new(ndim, bits)
    }

    /// Coordinates → transposed Hilbert index (Skilling's AxestoTranspose).
    fn axes_to_transpose(&self, x: &mut [u32]) {
        let n = x.len();
        let m = 1u32 << (self.bits - 1);
        // Inverse undo.
        let mut q = m;
        while q > 1 {
            let p = q - 1;
            for i in 0..n {
                if x[i] & q != 0 {
                    x[0] ^= p;
                } else {
                    let t = (x[0] ^ x[i]) & p;
                    x[0] ^= t;
                    x[i] ^= t;
                }
            }
            q >>= 1;
        }
        // Gray encode.
        for i in 1..n {
            x[i] ^= x[i - 1];
        }
        let mut t = 0u32;
        let mut q = m;
        while q > 1 {
            if x[n - 1] & q != 0 {
                t ^= q - 1;
            }
            q >>= 1;
        }
        for xi in x.iter_mut() {
            *xi ^= t;
        }
    }

    /// Transposed Hilbert index → coordinates (Skilling's TransposetoAxes).
    fn transpose_to_axes(&self, x: &mut [u32]) {
        let n = x.len();
        let cap = 2u32 << (self.bits - 1);
        // Gray decode by H ^ (H/2).
        let mut t = x[n - 1] >> 1;
        for i in (1..n).rev() {
            x[i] ^= x[i - 1];
        }
        x[0] ^= t;
        // Undo excess work.
        let mut q = 2u32;
        while q != cap {
            let p = q - 1;
            for i in (0..n).rev() {
                if x[i] & q != 0 {
                    x[0] ^= p;
                } else {
                    t = (x[0] ^ x[i]) & p;
                    x[0] ^= t;
                    x[i] ^= t;
                }
            }
            q <<= 1;
        }
    }

    /// Pack a transposed index into a single rank word: index bit
    /// `b·ndim + (ndim−1−i)` is bit `b` of transposed word `i`.
    fn pack(&self, x: &[u32]) -> u64 {
        let n = self.ndim;
        let mut rank = 0u64;
        for b in 0..self.bits {
            for (i, &xi) in x.iter().enumerate() {
                let bit = ((xi >> b) & 1) as u64;
                let pos = b as usize * n + (n - 1 - i);
                rank |= bit << pos;
            }
        }
        rank
    }

    /// Inverse of [`HilbertCurve::pack`].
    fn unpack(&self, rank: u64) -> Vec<u32> {
        let n = self.ndim;
        let mut x = vec![0u32; n];
        for b in 0..self.bits {
            for (i, xi) in x.iter_mut().enumerate() {
                let pos = b as usize * n + (n - 1 - i);
                let bit = ((rank >> pos) & 1) as u32;
                *xi |= bit << b;
            }
        }
        x
    }
}

impl SpaceFillingCurve for HilbertCurve {
    fn ndim(&self) -> usize {
        self.ndim
    }

    fn dims(&self) -> Vec<u64> {
        vec![1u64 << self.bits; self.ndim]
    }

    fn kind(&self) -> CurveKind {
        CurveKind::Hilbert
    }

    fn encode(&self, coords: &[u32]) -> u64 {
        debug_assert_eq!(coords.len(), self.ndim);
        debug_assert!(coords.iter().all(|&c| (c as u64) < (1u64 << self.bits)));
        let mut x = coords.to_vec();
        self.axes_to_transpose(&mut x);
        self.pack(&x)
    }

    fn decode(&self, rank: u64) -> Vec<u32> {
        debug_assert!(rank < self.num_points());
        let mut x = self.unpack(rank);
        self.transpose_to_axes(&mut x);
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manhattan(a: &[u32], b: &[u32]) -> u64 {
        a.iter()
            .zip(b.iter())
            .map(|(&x, &y)| (x as i64 - y as i64).unsigned_abs())
            .sum()
    }

    #[test]
    fn roundtrip_various_shapes() {
        for (k, b) in [(1usize, 5u32), (2, 4), (3, 3), (4, 2), (5, 2), (6, 2)] {
            let c = HilbertCurve::new(k, b).unwrap();
            for r in 0..c.num_points() {
                let coords = c.decode(r);
                assert!(coords.iter().all(|&x| (x as u64) < (1 << b)));
                assert_eq!(c.encode(&coords), r, "k={k} b={b} rank {r}");
            }
        }
    }

    #[test]
    fn consecutive_ranks_are_unit_steps() {
        // The defining Hilbert property: the curve is continuous — every
        // step moves to a Manhattan-distance-1 neighbour.
        for (k, b) in [(2usize, 4u32), (3, 3), (4, 2), (5, 2)] {
            let c = HilbertCurve::new(k, b).unwrap();
            let mut prev = c.decode(0);
            for r in 1..c.num_points() {
                let cur = c.decode(r);
                assert_eq!(
                    manhattan(&prev, &cur),
                    1,
                    "k={k} b={b}: step {}→{r} jumps",
                    r - 1
                );
                prev = cur;
            }
        }
    }

    #[test]
    fn first_order_2d_visits_all_four_cells() {
        let c = HilbertCurve::new(2, 1).unwrap();
        let cells: Vec<Vec<u32>> = (0..4).map(|r| c.decode(r)).collect();
        // Bijection over the 2×2 grid with unit steps.
        let mut sorted = cells.clone();
        sorted.sort();
        assert_eq!(sorted, vec![vec![0, 0], vec![0, 1], vec![1, 0], vec![1, 1]]);
        for w in cells.windows(2) {
            assert_eq!(manhattan(&w[0], &w[1]), 1);
        }
    }

    #[test]
    fn curve_is_a_bijection() {
        let c = HilbertCurve::new(2, 3).unwrap();
        let mut seen = [false; 64];
        for x in 0..8u32 {
            for y in 0..8u32 {
                let r = c.encode(&[x, y]) as usize;
                assert!(!seen[r], "rank {r} hit twice");
                seen[r] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn start_is_origin() {
        for (k, b) in [(2usize, 2u32), (3, 2), (5, 2)] {
            let c = HilbertCurve::new(k, b).unwrap();
            assert_eq!(c.decode(0), vec![0; k], "k={k} b={b}");
        }
    }

    #[test]
    fn construction_errors() {
        assert!(HilbertCurve::new(0, 2).is_err());
        assert!(HilbertCurve::new(2, 0).is_err());
        assert!(HilbertCurve::new(16, 4).is_err());
        assert!(HilbertCurve::from_side(2, 12).is_err());
        assert!(HilbertCurve::from_side(2, 16).is_ok());
    }

    #[test]
    fn kind_and_dims() {
        let c = HilbertCurve::new(4, 2).unwrap();
        assert_eq!(c.kind(), CurveKind::Hilbert);
        assert_eq!(c.dims(), vec![4; 4]);
        assert_eq!(c.num_points(), 256);
    }
}
