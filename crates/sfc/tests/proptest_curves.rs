//! Property tests: every curve is a bijection with exact inverses, on every
//! shape the paper's experiments use.

use proptest::prelude::*;
use slpm_sfc::{GrayCurve, HilbertCurve, PeanoCurve, SnakeCurve, SpaceFillingCurve, SweepCurve};

/// Strategy over (ndim, bits) pairs that stay within a small total budget so
/// exhaustive checks stay fast.
fn shape() -> impl Strategy<Value = (usize, u32)> {
    (1usize..=5, 1u32..=3).prop_filter("≤ 4096 points", |&(k, b)| (k as u32 * b) <= 12)
}

fn check_bijection(curve: &dyn SpaceFillingCurve) {
    let n = curve.num_points();
    let mut seen = vec![false; n as usize];
    for r in 0..n {
        let coords = curve.decode(r);
        assert_eq!(curve.encode(&coords), r, "roundtrip failed at rank {r}");
        let idx = r as usize;
        assert!(!seen[idx]);
        seen[idx] = true;
    }
    assert!(seen.into_iter().all(|s| s));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn peano_is_bijective((k, b) in shape()) {
        check_bijection(&PeanoCurve::new(k, b).unwrap());
    }

    #[test]
    fn gray_is_bijective((k, b) in shape()) {
        check_bijection(&GrayCurve::new(k, b).unwrap());
    }

    #[test]
    fn hilbert_is_bijective((k, b) in shape()) {
        check_bijection(&HilbertCurve::new(k, b).unwrap());
    }

    #[test]
    fn sweep_and_snake_bijective(dims in proptest::collection::vec(1u64..=6, 1..=4)) {
        check_bijection(&SweepCurve::new(&dims).unwrap());
        check_bijection(&SnakeCurve::new(&dims).unwrap());
    }

    #[test]
    fn hilbert_steps_are_unit((k, b) in shape()) {
        let c = HilbertCurve::new(k, b).unwrap();
        let mut prev = c.decode(0);
        for r in 1..c.num_points() {
            let cur = c.decode(r);
            let d: u64 = prev.iter().zip(cur.iter())
                .map(|(&x, &y)| (x as i64 - y as i64).unsigned_abs())
                .sum();
            prop_assert_eq!(d, 1, "jump at rank {}", r);
            prev = cur;
        }
    }

    #[test]
    fn snake_steps_are_unit(dims in proptest::collection::vec(2u64..=5, 1..=4)) {
        let c = SnakeCurve::new(&dims).unwrap();
        let mut prev = c.decode(0);
        for r in 1..c.num_points() {
            let cur = c.decode(r);
            let d: u64 = prev.iter().zip(cur.iter())
                .map(|(&x, &y)| (x as i64 - y as i64).unsigned_abs())
                .sum();
            prop_assert_eq!(d, 1, "jump at rank {}", r);
            prev = cur;
        }
    }

    #[test]
    fn gray_steps_flip_one_axis((k, b) in shape()) {
        let c = GrayCurve::new(k, b).unwrap();
        let mut prev = c.decode(0);
        for r in 1..c.num_points() {
            let cur = c.decode(r);
            let changed = prev.iter().zip(cur.iter()).filter(|(a, b)| a != b).count();
            prop_assert_eq!(changed, 1, "rank {}", r);
            prev = cur;
        }
    }

    #[test]
    fn rank_tables_are_permutations((k, b) in shape()) {
        for curve in [
            Box::new(PeanoCurve::new(k, b).unwrap()) as Box<dyn SpaceFillingCurve>,
            Box::new(GrayCurve::new(k, b).unwrap()),
            Box::new(HilbertCurve::new(k, b).unwrap()),
        ] {
            let mut t = curve.rank_table();
            t.sort_unstable();
            let n = curve.num_points();
            prop_assert_eq!(t, (0..n).collect::<Vec<u64>>());
        }
    }
}
