//! Arbitrary integer point sets and their neighbourhood graphs.
//!
//! The paper's algorithm takes "a set of multi-dimensional points P" — not
//! necessarily a full grid. [`PointSet`] models that general case: any set
//! of distinct integer points, with builders producing the Manhattan-
//! distance-1 graph of step 1 (or its Chebyshev / radius generalisations
//! from Section 4). Vertex `i` of the resulting graph corresponds to
//! `points()[i]`, and points are kept in sorted order so ids are stable and
//! reproducible.

use crate::graph::Graph;
use crate::grid::{Connectivity, GridSpec};

/// A finite set of distinct points with signed integer coordinates, all of
/// the same dimensionality.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PointSet {
    ndim: usize,
    points: Vec<Vec<i64>>,
}

/// Errors from point-set construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PointSetError {
    /// The input was empty (dimensionality would be undefined).
    Empty,
    /// A point had a different dimensionality than the first.
    MixedDimensions {
        /// Dimensionality of the first point.
        expected: usize,
        /// Dimensionality of the offending point.
        found: usize,
    },
}

impl std::fmt::Display for PointSetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PointSetError::Empty => write!(f, "point set must not be empty"),
            PointSetError::MixedDimensions { expected, found } => {
                write!(
                    f,
                    "mixed dimensionality: expected {expected}, found {found}"
                )
            }
        }
    }
}

impl std::error::Error for PointSetError {}

impl PointSet {
    /// Build from a list of points; duplicates are removed, order is
    /// normalised to lexicographic.
    pub fn new(points: Vec<Vec<i64>>) -> Result<Self, PointSetError> {
        let first = points.first().ok_or(PointSetError::Empty)?;
        let ndim = first.len();
        for p in &points {
            if p.len() != ndim {
                return Err(PointSetError::MixedDimensions {
                    expected: ndim,
                    found: p.len(),
                });
            }
        }
        let mut pts = points;
        pts.sort_unstable();
        pts.dedup();
        Ok(PointSet { ndim, points: pts })
    }

    /// Every point of a grid, in the grid's row-major order (so vertex ids
    /// line up with [`GridSpec::index_of`]).
    pub fn from_grid(spec: &GridSpec) -> Self {
        let points: Vec<Vec<i64>> = spec
            .iter_points()
            .map(|c| c.into_iter().map(|x| x as i64).collect())
            .collect();
        // Row-major order on non-negative coordinates *is* lexicographic
        // order, so the sorted invariant holds by construction.
        PointSet {
            ndim: spec.ndim(),
            points,
        }
    }

    /// Dimensionality.
    #[inline]
    pub fn ndim(&self) -> usize {
        self.ndim
    }

    /// Number of points.
    #[inline]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if the set is empty (never true for a constructed set).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The points, sorted lexicographically; index = graph vertex id.
    pub fn points(&self) -> &[Vec<i64>] {
        &self.points
    }

    /// Index of a point, if present (binary search).
    pub fn index_of(&self, p: &[i64]) -> Option<usize> {
        self.points.binary_search_by(|q| q.as_slice().cmp(p)).ok()
    }

    /// Manhattan distance between two points in the set (by index).
    pub fn manhattan(&self, i: usize, j: usize) -> u64 {
        self.points[i]
            .iter()
            .zip(self.points[j].iter())
            .map(|(&a, &b)| a.abs_diff(b))
            .sum()
    }

    /// Chebyshev distance between two points in the set (by index).
    pub fn chebyshev(&self, i: usize, j: usize) -> u64 {
        self.points[i]
            .iter()
            .zip(self.points[j].iter())
            .map(|(&a, &b)| a.abs_diff(b))
            .max()
            .unwrap_or(0)
    }

    /// The paper's step-1 graph: vertices = points, edges between points at
    /// Manhattan distance exactly 1.
    pub fn manhattan_graph(&self) -> Graph {
        self.neighbourhood_graph(Connectivity::Orthogonal)
    }

    /// Neighbourhood graph under either connectivity model: Manhattan
    /// distance 1 (orthogonal) or Chebyshev distance 1 (full).
    ///
    /// Implementation: for each point, probe the finitely many candidate
    /// neighbour coordinates with a binary search, generating each edge from
    /// its lexicographically smaller endpoint. O(n · 3^k · log n) — fine for
    /// the ≤ 6 dimensions the paper considers.
    pub fn neighbourhood_graph(&self, connectivity: Connectivity) -> Graph {
        let n = self.len();
        let k = self.ndim;
        let mut g = Graph::new(n);
        let mut candidate = vec![0i64; k];
        match connectivity {
            Connectivity::Orthogonal => {
                for (i, p) in self.points.iter().enumerate() {
                    for d in 0..k {
                        // Only the +1 probe: the −1 neighbour generates the
                        // edge from its own side.
                        candidate.copy_from_slice(p);
                        candidate[d] += 1;
                        if let Some(j) = self.index_of(&candidate) {
                            g.add_edge(i, j).expect("indices valid");
                        }
                    }
                }
            }
            Connectivity::Full => {
                let total = 3usize.pow(k as u32);
                for (i, p) in self.points.iter().enumerate() {
                    'offsets: for code in 0..total {
                        let mut c = code;
                        let mut lex_positive = false;
                        let mut decided = false;
                        for d in (0..k).rev() {
                            let off = (c % 3) as i64 - 1;
                            c /= 3;
                            candidate[d] = p[d] + off;
                        }
                        // Determine lexicographic positivity of the offset.
                        for d in 0..k {
                            let off = candidate[d] - p[d];
                            if off != 0 && !decided {
                                lex_positive = off > 0;
                                decided = true;
                            }
                        }
                        if !decided || !lex_positive {
                            continue 'offsets;
                        }
                        if let Some(j) = self.index_of(&candidate) {
                            g.add_edge(i, j).expect("indices valid");
                        }
                    }
                }
            }
        }
        g
    }

    /// Weighted complete-neighbourhood graph of Section 4's footnote:
    /// every pair within Manhattan distance `radius` gets an edge of weight
    /// `1 / manhattan(i, j)`. O(n²) — intended for small point sets.
    pub fn inverse_distance_graph(&self, radius: u64) -> Graph {
        let n = self.len();
        let mut g = Graph::new(n);
        for i in 0..n {
            for j in i + 1..n {
                let d = self.manhattan(i, j);
                if d >= 1 && d <= radius {
                    g.add_weighted_edge(i, j, 1.0 / d as f64)
                        .expect("indices valid, weight positive");
                }
            }
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_sorts_and_dedups() {
        let ps = PointSet::new(vec![vec![1, 1], vec![0, 0], vec![1, 1]]).unwrap();
        assert_eq!(ps.len(), 2);
        assert_eq!(ps.points()[0], vec![0, 0]);
        assert_eq!(ps.index_of(&[1, 1]), Some(1));
        assert_eq!(ps.index_of(&[2, 2]), None);
        assert!(!ps.is_empty());
    }

    #[test]
    fn rejects_empty_and_mixed() {
        assert_eq!(PointSet::new(vec![]).unwrap_err(), PointSetError::Empty);
        let err = PointSet::new(vec![vec![0, 0], vec![1]]).unwrap_err();
        assert!(matches!(err, PointSetError::MixedDimensions { .. }));
    }

    #[test]
    fn from_grid_matches_row_major() {
        let spec = GridSpec::new(&[2, 3]);
        let ps = PointSet::from_grid(&spec);
        assert_eq!(ps.len(), 6);
        for (i, p) in ps.points().iter().enumerate() {
            let coords: Vec<usize> = p.iter().map(|&x| x as usize).collect();
            assert_eq!(spec.index_of(&coords), i);
        }
    }

    #[test]
    fn manhattan_graph_on_grid_matches_grid_graph() {
        let spec = GridSpec::new(&[3, 3]);
        let ps = PointSet::from_grid(&spec);
        let from_points = ps.manhattan_graph();
        let from_grid = spec.graph(Connectivity::Orthogonal);
        assert_eq!(from_points.num_edges(), from_grid.num_edges());
        for (u, v, w) in from_grid.edges() {
            assert_eq!(from_points.edge_weight(u, v), w);
        }
    }

    #[test]
    fn full_graph_on_grid_matches_grid_graph() {
        let spec = GridSpec::new(&[3, 3]);
        let ps = PointSet::from_grid(&spec);
        let a = ps.neighbourhood_graph(Connectivity::Full);
        let b = spec.graph(Connectivity::Full);
        assert_eq!(a.num_edges(), b.num_edges());
    }

    #[test]
    fn sparse_point_set_graph() {
        // An L-shaped set with a gap: (0,0)-(0,1)-(0,2), (2,0) isolated.
        let ps = PointSet::new(vec![vec![0, 0], vec![0, 1], vec![0, 2], vec![2, 0]]).unwrap();
        let g = ps.manhattan_graph();
        assert_eq!(g.num_edges(), 2);
        assert!(!crate::traversal::is_connected(&g));
    }

    #[test]
    fn negative_coordinates_work() {
        let ps = PointSet::new(vec![vec![-1, 0], vec![0, 0], vec![1, 0]]).unwrap();
        let g = ps.manhattan_graph();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(ps.manhattan(0, 2), 2);
        assert_eq!(ps.chebyshev(0, 2), 2);
    }

    #[test]
    fn inverse_distance_graph_weights() {
        let ps = PointSet::new(vec![vec![0], vec![1], vec![3]]).unwrap();
        let g = ps.inverse_distance_graph(3);
        assert_eq!(g.edge_weight(0, 1), 1.0);
        assert_eq!(g.edge_weight(1, 2), 0.5);
        assert!((g.edge_weight(0, 2) - 1.0 / 3.0).abs() < 1e-15);
        // Radius cut-off respected.
        let g1 = ps.inverse_distance_graph(1);
        assert_eq!(g1.num_edges(), 1);
    }
}
