//! Graph substrate for Spectral LPM.
//!
//! Step 1 of the paper's algorithm models a multi-dimensional point set as a
//! graph `G(V, E)`: one vertex per point, an edge wherever two points lie at
//! Manhattan distance 1. Section 4 generalises this to 8-connectivity
//! (Chebyshev distance 1), arbitrary *affinity* edges encoding access
//! correlations, and weighted graphs. This crate supplies all of those
//! graph models plus the Laplacian `L = D − A` that the eigensolver layer
//! consumes:
//!
//! * [`graph`] — the weighted undirected [`Graph`] type (edge-list builder +
//!   CSR adjacency), degrees, Laplacians.
//! * [`coarsen`] — heavy-edge-matching contraction into weighted coarse
//!   graphs, the substrate of the multilevel Fiedler solver.
//! * [`grid`] — k-dimensional grid specifications with index ⇄ coordinate
//!   conversion and grid-graph builders for every connectivity the paper
//!   uses.
//! * [`points`] — arbitrary (possibly sparse/non-grid) integer point sets
//!   and their neighbourhood graphs.
//! * [`traversal`] — BFS, connectivity and component analysis (Spectral LPM
//!   requires a connected graph; disconnected inputs are surfaced as typed
//!   errors upstream).
//!
//! ```
//! use slpm_graph::grid::{Connectivity, GridSpec};
//!
//! let spec = GridSpec::new(&[3, 3]);
//! let graph = spec.graph(Connectivity::Orthogonal); // paper step 1
//! let laplacian = graph.laplacian();                // paper step 2
//! assert_eq!(graph.num_edges(), 12);
//! assert_eq!(laplacian.get(4, 4), 4.0);             // centre degree
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coarsen;
pub mod graph;
pub mod grid;
pub mod points;
pub mod traversal;

pub use coarsen::GraphCoarsening;
pub use graph::{Graph, GraphError};
pub use grid::{Connectivity, GridSpec};
pub use points::PointSet;
