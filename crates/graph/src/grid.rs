//! k-dimensional grid spaces and their graphs.
//!
//! The paper's experiments all run on finite k-dimensional grids: 2-D for
//! the fairness study (Figure 5b), 4-D for range queries (Figure 6), 5-D
//! for the nearest-neighbour worst case (Figure 5a), plus the 3×3 and 4×4
//! worked examples (Figures 3 and 4). A [`GridSpec`] describes such a grid
//! and provides the row-major index ⇄ coordinate bijection every other
//! layer (curves, metrics, storage) shares.

use crate::graph::Graph;

/// Neighbourhood model used when turning a grid into a graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Connectivity {
    /// Edges between points at Manhattan distance 1 (the paper's default,
    /// "four-connectivity" in 2-D; 2k neighbours in k-D).
    #[default]
    Orthogonal,
    /// Edges between points at Chebyshev distance 1 ("eight-connectivity"
    /// in 2-D, Figure 4c/4d; 3^k − 1 neighbours in k-D).
    Full,
}

/// A finite axis-aligned grid `[0, dims[0]) × … × [0, dims[k-1])`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct GridSpec {
    dims: Vec<usize>,
}

impl GridSpec {
    /// Create a grid with the given per-dimension extents.
    ///
    /// # Panics
    /// Panics if `dims` is empty or any extent is zero — a grid with no
    /// cells has no meaningful mapping and indicates a caller bug.
    pub fn new(dims: &[usize]) -> Self {
        assert!(!dims.is_empty(), "grid must have at least one dimension");
        assert!(
            dims.iter().all(|&d| d > 0),
            "every grid dimension must be positive"
        );
        GridSpec {
            dims: dims.to_vec(),
        }
    }

    /// A `side^k` hypercube grid.
    pub fn cube(side: usize, k: usize) -> Self {
        Self::new(&vec![side; k])
    }

    /// Dimensionality `k`.
    #[inline]
    pub fn ndim(&self) -> usize {
        self.dims.len()
    }

    /// Extent of dimension `d`.
    #[inline]
    pub fn dim(&self, d: usize) -> usize {
        self.dims[d]
    }

    /// All extents.
    #[inline]
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Total number of grid points.
    pub fn num_points(&self) -> usize {
        self.dims.iter().product()
    }

    /// Maximum possible Manhattan distance between two grid points.
    pub fn max_manhattan(&self) -> usize {
        self.dims.iter().map(|&d| d - 1).sum()
    }

    /// Row-major ("sweep") linear index of a coordinate tuple.
    ///
    /// The **last** dimension varies fastest, matching the usual row-major
    /// convention: in 2-D `(x, y)` with dims `(W, H)`, index = `x·H + y`.
    ///
    /// # Panics
    /// Debug-panics when the coordinate is out of range.
    pub fn index_of(&self, coords: &[usize]) -> usize {
        debug_assert_eq!(coords.len(), self.ndim());
        let mut idx = 0usize;
        for (d, &c) in coords.iter().enumerate() {
            debug_assert!(c < self.dims[d], "coordinate {c} out of range in dim {d}");
            idx = idx * self.dims[d] + c;
        }
        idx
    }

    /// Inverse of [`GridSpec::index_of`].
    pub fn coords_of(&self, mut index: usize) -> Vec<usize> {
        debug_assert!(index < self.num_points());
        let k = self.ndim();
        let mut coords = vec![0usize; k];
        for d in (0..k).rev() {
            coords[d] = index % self.dims[d];
            index /= self.dims[d];
        }
        coords
    }

    /// Iterate over all coordinate tuples in row-major order.
    pub fn iter_points(&self) -> GridPointIter<'_> {
        GridPointIter {
            spec: self,
            next: 0,
        }
    }

    /// Manhattan (L1) distance between two coordinate tuples.
    pub fn manhattan(a: &[usize], b: &[usize]) -> usize {
        debug_assert_eq!(a.len(), b.len());
        a.iter().zip(b.iter()).map(|(&x, &y)| x.abs_diff(y)).sum()
    }

    /// Chebyshev (L∞) distance between two coordinate tuples.
    pub fn chebyshev(a: &[usize], b: &[usize]) -> usize {
        debug_assert_eq!(a.len(), b.len());
        a.iter()
            .zip(b.iter())
            .map(|(&x, &y)| x.abs_diff(y))
            .max()
            .unwrap_or(0)
    }

    /// Build the grid graph under the given connectivity (paper step 1 /
    /// Section 4 variation). Vertex ids are row-major indices.
    pub fn graph(&self, connectivity: Connectivity) -> Graph {
        self.weighted_graph(connectivity, |_, _| 1.0)
    }

    /// Build the **torus** graph: orthogonal connectivity with periodic
    /// boundaries (each dimension wraps around). Not used by the paper but
    /// valuable as a test oracle — the torus Laplacian spectrum is known in
    /// closed form (`λ = Σ_d 2 − 2cos(2π m_d / n_d)`), and cyclic spaces
    /// model wrap-around domains (hash-partitioned key spaces, angular
    /// coordinates).
    ///
    /// Dimensions of extent ≤ 2 do not wrap (the wrap edge would duplicate
    /// an existing edge or form a self-loop).
    pub fn torus_graph(&self) -> Graph {
        let n = self.num_points();
        let k = self.ndim();
        let mut g = Graph::new(n);
        let mut neighbor = vec![0usize; k];
        for coords in self.iter_points() {
            let idx = self.index_of(&coords);
            for d in 0..k {
                if coords[d] + 1 < self.dims[d] {
                    neighbor.copy_from_slice(&coords);
                    neighbor[d] += 1;
                    g.add_edge(idx, self.index_of(&neighbor))
                        .expect("grid edges valid");
                } else if self.dims[d] > 2 {
                    // Wrap edge from the last cell back to the first.
                    neighbor.copy_from_slice(&coords);
                    neighbor[d] = 0;
                    g.add_edge(idx, self.index_of(&neighbor))
                        .expect("wrap edges valid");
                }
            }
        }
        g
    }

    /// Build a weighted grid graph: `weight(a_coords, b_coords)` is called
    /// for every neighbouring pair (Section 4's general weighted model,
    /// e.g. `w_ij = 1 / manhattan(i, j)`).
    ///
    /// Weights must be positive and finite.
    pub fn weighted_graph<F>(&self, connectivity: Connectivity, weight: F) -> Graph
    where
        F: Fn(&[usize], &[usize]) -> f64,
    {
        let n = self.num_points();
        let k = self.ndim();
        let mut g = Graph::new(n);
        let mut neighbor = vec![0usize; k];
        for coords in self.iter_points() {
            let idx = self.index_of(&coords);
            match connectivity {
                Connectivity::Orthogonal => {
                    // Only +1 steps: each edge is generated once.
                    for d in 0..k {
                        if coords[d] + 1 < self.dims[d] {
                            neighbor.copy_from_slice(&coords);
                            neighbor[d] += 1;
                            let w = weight(&coords, &neighbor);
                            g.add_weighted_edge(idx, self.index_of(&neighbor), w)
                                .expect("grid edges are valid by construction");
                        }
                    }
                }
                Connectivity::Full => {
                    // All {-1,0,+1}^k offsets, enumerated by counting in
                    // base 3; keep only lexicographically positive ones
                    // (first nonzero offset is +1) so each undirected edge
                    // is generated exactly once.
                    let total = 3usize.pow(k as u32);
                    'offsets: for code in 0..total {
                        let mut c = code;
                        let mut offsets = vec![0isize; k];
                        for d in (0..k).rev() {
                            offsets[d] = (c % 3) as isize - 1;
                            c /= 3;
                        }
                        match offsets.iter().find(|&&o| o != 0) {
                            Some(&1) => {}
                            _ => continue, // zero offset or leading −1
                        }
                        for d in 0..k {
                            let nc = coords[d] as isize + offsets[d];
                            if nc < 0 || nc as usize >= self.dims[d] {
                                continue 'offsets;
                            }
                            neighbor[d] = nc as usize;
                        }
                        let w = weight(&coords, &neighbor);
                        g.add_weighted_edge(idx, self.index_of(&neighbor), w)
                            .expect("grid edges are valid by construction");
                    }
                }
            }
        }
        g
    }
}

/// Iterator over grid coordinates in row-major order.
pub struct GridPointIter<'a> {
    spec: &'a GridSpec,
    next: usize,
}

impl Iterator for GridPointIter<'_> {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        if self.next >= self.spec.num_points() {
            return None;
        }
        let c = self.spec.coords_of(self.next);
        self.next += 1;
        Some(c)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.spec.num_points() - self.next;
        (rem, Some(rem))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip_2d() {
        let g = GridSpec::new(&[3, 4]);
        assert_eq!(g.num_points(), 12);
        for i in 0..12 {
            assert_eq!(g.index_of(&g.coords_of(i)), i);
        }
        // Last dimension fastest.
        assert_eq!(g.coords_of(0), vec![0, 0]);
        assert_eq!(g.coords_of(1), vec![0, 1]);
        assert_eq!(g.coords_of(4), vec![1, 0]);
    }

    #[test]
    fn index_roundtrip_5d() {
        let g = GridSpec::cube(3, 5);
        assert_eq!(g.num_points(), 243);
        for i in 0..243 {
            assert_eq!(g.index_of(&g.coords_of(i)), i);
        }
    }

    #[test]
    #[should_panic(expected = "at least one dimension")]
    fn empty_dims_panic() {
        GridSpec::new(&[]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_extent_panics() {
        GridSpec::new(&[3, 0]);
    }

    #[test]
    fn distances() {
        assert_eq!(GridSpec::manhattan(&[0, 0], &[2, 3]), 5);
        assert_eq!(GridSpec::chebyshev(&[0, 0], &[2, 3]), 3);
        assert_eq!(GridSpec::manhattan(&[1], &[1]), 0);
    }

    #[test]
    fn max_manhattan() {
        assert_eq!(GridSpec::new(&[4, 4]).max_manhattan(), 6);
        assert_eq!(GridSpec::cube(4, 5).max_manhattan(), 15);
    }

    #[test]
    fn iter_points_row_major() {
        let g = GridSpec::new(&[2, 2]);
        let pts: Vec<_> = g.iter_points().collect();
        assert_eq!(pts, vec![vec![0, 0], vec![0, 1], vec![1, 0], vec![1, 1]]);
        assert_eq!(g.iter_points().size_hint(), (4, Some(4)));
    }

    #[test]
    fn orthogonal_graph_edge_count() {
        // m×n grid: edges = m(n-1) + n(m-1).
        let g = GridSpec::new(&[3, 3]).graph(Connectivity::Orthogonal);
        assert_eq!(g.num_vertices(), 9);
        assert_eq!(g.num_edges(), 12);
        // Paper Figure 3b: the 3×3 grid graph. Corner degree 2, edge 3,
        // centre 4.
        let degs = g.degrees();
        let spec = GridSpec::new(&[3, 3]);
        assert_eq!(degs[spec.index_of(&[0, 0])], 2.0);
        assert_eq!(degs[spec.index_of(&[0, 1])], 3.0);
        assert_eq!(degs[spec.index_of(&[1, 1])], 4.0);
    }

    #[test]
    fn orthogonal_graph_is_manhattan_1() {
        let spec = GridSpec::new(&[3, 4]);
        let g = spec.graph(Connectivity::Orthogonal);
        for a in spec.iter_points() {
            for b in spec.iter_points() {
                let ia = spec.index_of(&a);
                let ib = spec.index_of(&b);
                let expect = GridSpec::manhattan(&a, &b) == 1;
                assert_eq!(g.has_edge(ia, ib), expect, "pair {a:?} {b:?}");
            }
        }
    }

    #[test]
    fn full_graph_is_chebyshev_1() {
        let spec = GridSpec::new(&[3, 3]);
        let g = spec.graph(Connectivity::Full);
        for a in spec.iter_points() {
            for b in spec.iter_points() {
                let ia = spec.index_of(&a);
                let ib = spec.index_of(&b);
                let expect = GridSpec::chebyshev(&a, &b) == 1;
                assert_eq!(g.has_edge(ia, ib), expect, "pair {a:?} {b:?}");
            }
        }
        // 3×3 8-connected: 12 orthogonal + 8 diagonal edges.
        assert_eq!(g.num_edges(), 20);
    }

    #[test]
    fn full_graph_3d_includes_diagonals() {
        let spec = GridSpec::cube(2, 3);
        let g = spec.graph(Connectivity::Full);
        // In a 2³ cube under Chebyshev-1, every pair of distinct corners is
        // adjacent: complete graph K8 = 28 edges.
        assert_eq!(g.num_edges(), 28);
    }

    #[test]
    fn one_dimensional_grid_is_path() {
        let g = GridSpec::new(&[5]).graph(Connectivity::Orthogonal);
        assert_eq!(g.num_edges(), 4);
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(0, 2));
        // In 1-D Orthogonal and Full coincide.
        let f = GridSpec::new(&[5]).graph(Connectivity::Full);
        assert_eq!(f.num_edges(), 4);
    }

    #[test]
    fn weighted_graph_applies_weight_fn() {
        let spec = GridSpec::new(&[2, 2]);
        // Weight = 10·(sum of endpoint indices' first coords + 1) as an
        // arbitrary but checkable function.
        let g = spec.weighted_graph(Connectivity::Orthogonal, |a, b| {
            10.0 * ((a[0] + b[0]) as f64 + 1.0)
        });
        let i00 = spec.index_of(&[0, 0]);
        let i01 = spec.index_of(&[0, 1]);
        let i10 = spec.index_of(&[1, 0]);
        assert_eq!(g.edge_weight(i00, i01), 10.0);
        assert_eq!(g.edge_weight(i00, i10), 20.0);
    }

    #[test]
    fn grid_graphs_are_connected() {
        for spec in [
            GridSpec::new(&[4, 4]),
            GridSpec::cube(3, 3),
            GridSpec::new(&[2, 5, 3]),
        ] {
            spec.graph(Connectivity::Orthogonal)
                .require_connected()
                .unwrap();
            spec.graph(Connectivity::Full).require_connected().unwrap();
        }
    }

    #[test]
    fn torus_is_regular_and_connected() {
        let spec = GridSpec::new(&[4, 5]);
        let g = spec.torus_graph();
        g.require_connected().unwrap();
        // Every vertex of a (≥3)-extent torus has degree 2k.
        for d in g.degrees() {
            assert_eq!(d, 4.0);
        }
        // Edge count: n·k (each vertex contributes one +1 edge per dim).
        assert_eq!(g.num_edges(), 20 * 2);
    }

    #[test]
    fn torus_small_extents_do_not_wrap() {
        // A 2-extent dimension must not create parallel edges.
        let spec = GridSpec::new(&[2, 3]);
        let g = spec.torus_graph();
        // dim0 (extent 2): plain path edges; dim1 (extent 3): cycles.
        assert_eq!(
            g.edge_weight(spec.index_of(&[0, 0]), spec.index_of(&[1, 0])),
            1.0
        );
        assert_eq!(
            g.edge_weight(spec.index_of(&[0, 0]), spec.index_of(&[0, 2])),
            1.0
        );
        g.require_connected().unwrap();
    }

    #[test]
    fn one_dimensional_torus_is_cycle() {
        let g = GridSpec::new(&[6]).torus_graph();
        assert_eq!(g.num_edges(), 6);
        assert!(g.has_edge(0, 5));
        for d in g.degrees() {
            assert_eq!(d, 2.0);
        }
    }

    #[test]
    fn full_connectivity_edge_count_2d() {
        // m×n 8-connected grid: orth m(n-1)+n(m-1), diag 2(m-1)(n-1).
        let spec = GridSpec::new(&[4, 5]);
        let g = spec.graph(Connectivity::Full);
        let expect = 4 * 4 + 5 * 3 + 2 * 3 * 4;
        assert_eq!(g.num_edges(), expect);
    }
}
