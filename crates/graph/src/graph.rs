//! The weighted undirected [`Graph`] type and its matrix views.

use slpm_linalg::sparse::CsrMatrix;
use std::collections::BTreeMap;
use std::fmt;

/// Errors from graph construction and matrix extraction.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// Edge endpoint out of range.
    VertexOutOfRange {
        /// The offending vertex id.
        vertex: usize,
        /// Number of vertices in the graph.
        num_vertices: usize,
    },
    /// Self-loops carry no locality information and are rejected.
    SelfLoop {
        /// The vertex that was joined to itself.
        vertex: usize,
    },
    /// Edge weights must be positive and finite (a weight encodes the
    /// priority of placing two points close together; zero or negative
    /// priorities are meaningless in the paper's model).
    BadWeight {
        /// The offending weight.
        weight: f64,
    },
    /// A vertex list that must be duplicate-free contained a repeat.
    DuplicateVertex {
        /// The repeated vertex id.
        vertex: usize,
    },
    /// The operation requires a connected graph.
    Disconnected {
        /// Number of connected components found.
        components: usize,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfRange {
                vertex,
                num_vertices,
            } => {
                write!(
                    f,
                    "vertex {vertex} out of range (graph has {num_vertices} vertices)"
                )
            }
            GraphError::SelfLoop { vertex } => write!(f, "self-loop at vertex {vertex}"),
            GraphError::BadWeight { weight } => {
                write!(f, "edge weight must be positive and finite, got {weight}")
            }
            GraphError::DuplicateVertex { vertex } => {
                write!(f, "vertex {vertex} appears more than once")
            }
            GraphError::Disconnected { components } => {
                write!(f, "graph is disconnected ({components} components)")
            }
        }
    }
}

impl std::error::Error for GraphError {}

/// A weighted undirected graph on vertices `0..n`.
///
/// Parallel edges are merged by **summing** weights (adding an affinity edge
/// on top of a grid edge strengthens the tie, matching the paper's
/// Section 4 semantics of "inform Spectral LPM that p and q need to be
/// treated as if they have Manhattan distance 1" — and more so if repeated).
#[derive(Debug, Clone, PartialEq)]
pub struct Graph {
    num_vertices: usize,
    /// Canonical edge map: key is `(min, max)` vertex pair, value is weight.
    edges: BTreeMap<(usize, usize), f64>,
}

impl Graph {
    /// Create an edgeless graph on `n` vertices.
    pub fn new(n: usize) -> Self {
        Graph {
            num_vertices: n,
            edges: BTreeMap::new(),
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of (undirected, merged) edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Add an undirected unit-weight edge.
    pub fn add_edge(&mut self, u: usize, v: usize) -> Result<(), GraphError> {
        self.add_weighted_edge(u, v, 1.0)
    }

    /// Add an undirected weighted edge; merging duplicates sums weights.
    pub fn add_weighted_edge(&mut self, u: usize, v: usize, w: f64) -> Result<(), GraphError> {
        if u >= self.num_vertices {
            return Err(GraphError::VertexOutOfRange {
                vertex: u,
                num_vertices: self.num_vertices,
            });
        }
        if v >= self.num_vertices {
            return Err(GraphError::VertexOutOfRange {
                vertex: v,
                num_vertices: self.num_vertices,
            });
        }
        if u == v {
            return Err(GraphError::SelfLoop { vertex: u });
        }
        if !(w.is_finite() && w > 0.0) {
            return Err(GraphError::BadWeight { weight: w });
        }
        let key = (u.min(v), u.max(v));
        *self.edges.entry(key).or_insert(0.0) += w;
        Ok(())
    }

    /// Weight of edge `(u, v)` (0 when absent).
    pub fn edge_weight(&self, u: usize, v: usize) -> f64 {
        let key = (u.min(v), u.max(v));
        self.edges.get(&key).copied().unwrap_or(0.0)
    }

    /// True if `(u, v)` is an edge.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.edge_weight(u, v) > 0.0
    }

    /// Iterate over edges as `(u, v, w)` with `u < v`, sorted.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        self.edges.iter().map(|(&(u, v), &w)| (u, v, w))
    }

    /// Weighted degree of every vertex (`d_i = Σ_j w_ij`).
    pub fn degrees(&self) -> Vec<f64> {
        let mut deg = vec![0.0; self.num_vertices];
        for (&(u, v), &w) in &self.edges {
            deg[u] += w;
            deg[v] += w;
        }
        deg
    }

    /// Neighbour lists (vertex ids only), sorted ascending.
    pub fn adjacency_lists(&self) -> Vec<Vec<usize>> {
        let mut adj = vec![Vec::new(); self.num_vertices];
        for &(u, v) in self.edges.keys() {
            adj[u].push(v);
            adj[v].push(u);
        }
        for l in &mut adj {
            l.sort_unstable();
        }
        adj
    }

    /// The weighted adjacency matrix `A` in CSR form.
    pub fn adjacency_matrix(&self) -> CsrMatrix {
        let n = self.num_vertices;
        let mut t = Vec::with_capacity(2 * self.edges.len());
        for (&(u, v), &w) in &self.edges {
            t.push((u, v, w));
            t.push((v, u, w));
        }
        CsrMatrix::from_triplets(n, n, &t).expect("edge endpoints validated on insert")
    }

    /// The combinatorial Laplacian `L = D − A` in CSR form (paper step 2).
    pub fn laplacian(&self) -> CsrMatrix {
        let n = self.num_vertices;
        let mut t = Vec::with_capacity(2 * self.edges.len() + n);
        let mut deg = vec![0.0; n];
        for (&(u, v), &w) in &self.edges {
            t.push((u, v, -w));
            t.push((v, u, -w));
            deg[u] += w;
            deg[v] += w;
        }
        for (i, d) in deg.into_iter().enumerate() {
            if d != 0.0 {
                t.push((i, i, d));
            }
        }
        CsrMatrix::from_triplets(n, n, &t).expect("edge endpoints validated on insert")
    }

    /// The symmetric normalised Laplacian `I − D^{-1/2} A D^{-1/2}`.
    ///
    /// Not used by the paper's algorithm but provided for ablation: spectral
    /// orders from the normalised Laplacian differ on irregular graphs.
    pub fn normalized_laplacian(&self) -> CsrMatrix {
        let n = self.num_vertices;
        let deg = self.degrees();
        let inv_sqrt: Vec<f64> = deg
            .iter()
            .map(|&d| if d > 0.0 { 1.0 / d.sqrt() } else { 0.0 })
            .collect();
        let mut t = Vec::with_capacity(2 * self.edges.len() + n);
        for (&(u, v), &w) in &self.edges {
            let nv = -w * inv_sqrt[u] * inv_sqrt[v];
            t.push((u, v, nv));
            t.push((v, u, nv));
        }
        for i in 0..n {
            if deg[i] > 0.0 {
                t.push((i, i, 1.0));
            }
        }
        CsrMatrix::from_triplets(n, n, &t).expect("edge endpoints validated on insert")
    }

    /// Induced subgraph on a set of vertices.
    ///
    /// Returns the subgraph (with vertices renumbered `0..set.len()` in the
    /// order given) plus the mapping from new ids back to original ids.
    /// Duplicate vertices in `vertices` are rejected.
    pub fn induced_subgraph(&self, vertices: &[usize]) -> Result<(Graph, Vec<usize>), GraphError> {
        let mut new_id = std::collections::BTreeMap::new();
        for (new, &old) in vertices.iter().enumerate() {
            if old >= self.num_vertices {
                return Err(GraphError::VertexOutOfRange {
                    vertex: old,
                    num_vertices: self.num_vertices,
                });
            }
            if new_id.insert(old, new).is_some() {
                return Err(GraphError::DuplicateVertex { vertex: old });
            }
        }
        let mut g = Graph::new(vertices.len());
        for (&(u, v), &w) in &self.edges {
            if let (Some(&nu), Some(&nv)) = (new_id.get(&u), new_id.get(&v)) {
                g.add_weighted_edge(nu, nv, w)
                    .expect("subgraph edges valid by construction");
            }
        }
        Ok((g, vertices.to_vec()))
    }

    /// Require connectivity, returning a typed error otherwise.
    pub fn require_connected(&self) -> Result<(), GraphError> {
        let comps = crate::traversal::connected_components(self);
        let count = comps.iter().copied().max().map_or(0, |m| m + 1);
        if self.num_vertices > 0 && count != 1 {
            return Err(GraphError::Disconnected { components: count });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        let mut g = Graph::new(3);
        g.add_edge(0, 1).unwrap();
        g.add_edge(1, 2).unwrap();
        g.add_edge(2, 0).unwrap();
        g
    }

    #[test]
    fn counts_and_membership() {
        let g = triangle();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 0));
    }

    #[test]
    fn duplicate_edges_sum_weights() {
        let mut g = Graph::new(2);
        g.add_weighted_edge(0, 1, 1.5).unwrap();
        g.add_weighted_edge(1, 0, 2.5).unwrap();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.edge_weight(0, 1), 4.0);
    }

    #[test]
    fn rejects_bad_edges() {
        let mut g = Graph::new(2);
        assert!(matches!(
            g.add_edge(0, 2),
            Err(GraphError::VertexOutOfRange { .. })
        ));
        assert!(matches!(g.add_edge(1, 1), Err(GraphError::SelfLoop { .. })));
        assert!(matches!(
            g.add_weighted_edge(0, 1, 0.0),
            Err(GraphError::BadWeight { .. })
        ));
        assert!(matches!(
            g.add_weighted_edge(0, 1, -1.0),
            Err(GraphError::BadWeight { .. })
        ));
        assert!(matches!(
            g.add_weighted_edge(0, 1, f64::NAN),
            Err(GraphError::BadWeight { .. })
        ));
    }

    #[test]
    fn degrees_of_triangle() {
        assert_eq!(triangle().degrees(), vec![2.0, 2.0, 2.0]);
    }

    #[test]
    fn adjacency_lists_sorted() {
        let mut g = Graph::new(4);
        g.add_edge(3, 0).unwrap();
        g.add_edge(0, 1).unwrap();
        assert_eq!(g.adjacency_lists()[0], vec![1, 3]);
    }

    #[test]
    fn laplacian_matches_definition() {
        // Paper Figure 3c shows the Laplacian of a 3×3 grid; here we verify
        // the definition L = D − A on the triangle.
        let g = triangle();
        let l = g.laplacian();
        assert_eq!(l.get(0, 0), 2.0);
        assert_eq!(l.get(0, 1), -1.0);
        assert_eq!(l.get(1, 2), -1.0);
        for s in l.row_sums() {
            assert!(s.abs() < 1e-15);
        }
        l.require_symmetric(0.0).unwrap();
    }

    #[test]
    fn laplacian_equals_d_minus_a() {
        let g = triangle();
        let l = g.laplacian().to_dense();
        let a = g.adjacency_matrix().to_dense();
        let deg = g.degrees();
        for i in 0..3 {
            for j in 0..3 {
                let expect = if i == j { deg[i] } else { 0.0 } - a.get(i, j);
                assert_eq!(l.get(i, j), expect);
            }
        }
    }

    #[test]
    fn weighted_laplacian() {
        let mut g = Graph::new(2);
        g.add_weighted_edge(0, 1, 3.0).unwrap();
        let l = g.laplacian();
        assert_eq!(l.get(0, 0), 3.0);
        assert_eq!(l.get(0, 1), -3.0);
    }

    #[test]
    fn normalized_laplacian_diagonal_is_one() {
        let g = triangle();
        let nl = g.normalized_laplacian();
        for i in 0..3 {
            assert!((nl.get(i, i) - 1.0).abs() < 1e-15);
        }
        // Triangle is 2-regular: normalised = L / 2.
        let l = g.laplacian();
        for i in 0..3 {
            for j in 0..3 {
                assert!((nl.get(i, j) - l.get(i, j) / 2.0).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn connectivity_check() {
        triangle().require_connected().unwrap();
        let mut g = Graph::new(4);
        g.add_edge(0, 1).unwrap();
        g.add_edge(2, 3).unwrap();
        assert!(matches!(
            g.require_connected(),
            Err(GraphError::Disconnected { components: 2 })
        ));
    }

    #[test]
    fn empty_graph() {
        let g = Graph::new(0);
        assert_eq!(g.num_vertices(), 0);
        g.require_connected().unwrap(); // vacuously connected
        let l = g.laplacian();
        assert_eq!(l.rows(), 0);
    }

    #[test]
    fn isolated_vertices_graph_is_disconnected() {
        let g = Graph::new(3);
        assert!(g.require_connected().is_err());
    }

    #[test]
    fn edges_iterator_is_canonical() {
        let mut g = Graph::new(3);
        g.add_edge(2, 1).unwrap();
        g.add_edge(1, 0).unwrap();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1, 1.0), (1, 2, 1.0)]);
    }

    #[test]
    fn induced_subgraph_renumbers() {
        let mut g = Graph::new(5);
        g.add_edge(0, 1).unwrap();
        g.add_weighted_edge(1, 2, 2.0).unwrap();
        g.add_edge(3, 4).unwrap();
        let (sub, back) = g.induced_subgraph(&[2, 1, 0]).unwrap();
        assert_eq!(sub.num_vertices(), 3);
        assert_eq!(back, vec![2, 1, 0]);
        // Edge (1,2) maps to new ids (1,0) with weight 2; edge (0,1) → (2,1).
        assert_eq!(sub.edge_weight(0, 1), 2.0);
        assert_eq!(sub.edge_weight(1, 2), 1.0);
        assert!(!sub.has_edge(0, 2));
    }

    #[test]
    fn induced_subgraph_rejects_bad_input() {
        let g = Graph::new(3);
        assert!(matches!(
            g.induced_subgraph(&[0, 5]),
            Err(GraphError::VertexOutOfRange { .. })
        ));
        assert!(matches!(
            g.induced_subgraph(&[1, 1]),
            Err(GraphError::DuplicateVertex { vertex: 1 })
        ));
    }

    #[test]
    fn display_of_errors() {
        let e = GraphError::Disconnected { components: 3 };
        assert!(e.to_string().contains("3 components"));
    }
}
