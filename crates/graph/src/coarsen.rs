//! Heavy-edge graph coarsening (the multilevel solver's graph side).
//!
//! Section 4 of the paper extends Spectral LPM to arbitrary, sparse and
//! *weighted* point sets; the multilevel Fiedler solver exploits exactly
//! that generality by repeatedly contracting the neighbourhood graph into a
//! smaller **weighted** graph whose Laplacian is the Galerkin product
//! `PᵀLP` of the fine Laplacian. This module exposes that contraction at
//! the [`Graph`] level: [`coarsen`] performs one heavy-edge-matching step,
//! [`coarsen_to_size`] builds the whole hierarchy.
//!
//! The matching itself lives in [`slpm_linalg::multilevel`] (the solver
//! needs it on bare CSR Laplacians); this wrapper keeps a single
//! implementation and translates between the graph and matrix views.
//!
//! ```
//! use slpm_graph::grid::{Connectivity, GridSpec};
//! use slpm_graph::coarsen::coarsen;
//!
//! let fine = GridSpec::new(&[8, 8]).graph(Connectivity::Orthogonal);
//! let step = coarsen(&fine).unwrap();
//! // Heavy-edge matching roughly halves a grid.
//! assert!(step.coarse.num_vertices() <= 40);
//! assert_eq!(step.parent.len(), 64);
//! ```

use crate::graph::{Graph, GraphError};
use slpm_linalg::multilevel;
use slpm_linalg::Pool;

/// One coarsening step: the contracted weighted graph plus the
/// fine-vertex → coarse-vertex map defining the prolongation.
#[derive(Debug, Clone)]
pub struct GraphCoarsening {
    /// The contracted weighted graph (parallel edges merged by summing
    /// weights, matched-pair internal edges dropped).
    pub coarse: Graph,
    /// `parent[v]` is the coarse vertex fine vertex `v` was merged into.
    pub parent: Vec<usize>,
}

impl GraphCoarsening {
    /// Interpolate a coarse-vertex vector back to the fine vertices
    /// (piecewise-constant prolongation).
    pub fn prolong(&self, coarse_values: &[f64]) -> Vec<f64> {
        self.parent.iter().map(|&p| coarse_values[p]).collect()
    }
}

/// Contract `graph` one level by heavy-edge matching.
///
/// Edges are matched greedily in order of decreasing weight
/// (deterministic); unmatched vertices survive as singletons. The coarse
/// graph's Laplacian equals `PᵀLP` for the returned prolongation map, so
/// spectral quantities computed on the coarse graph are Rayleigh–Ritz
/// restrictions of the fine ones.
pub fn coarsen(graph: &Graph) -> Result<GraphCoarsening, GraphError> {
    coarsen_pooled(graph, &Pool::default())
}

/// [`coarsen`] with an explicit worker pool: the edge-rating and Galerkin
/// remap passes run row-chunked on it (see
/// [`multilevel::coarsen_laplacian_pooled`]); the result is identical for
/// every thread count.
pub fn coarsen_pooled(graph: &Graph, pool: &Pool) -> Result<GraphCoarsening, GraphError> {
    let step = multilevel::coarsen_laplacian_pooled(&graph.laplacian(), pool)
        .expect("a Graph's Laplacian is square and finite by construction");
    let nc = step.coarse_len();
    let mut coarse = Graph::new(nc);
    for i in 0..nc {
        for (j, v) in step.coarse.row_iter(i) {
            if j > i && -v > 0.0 {
                coarse.add_weighted_edge(i, j, -v)?;
            }
        }
    }
    Ok(GraphCoarsening {
        coarse,
        parent: step.parent,
    })
}

/// Minimum per-level shrink factor before a hierarchy build gives up,
/// matching the multilevel solver's default stall threshold
/// (`MultilevelOptions::min_shrink`).
const MIN_SHRINK: f64 = 0.95;

/// Coarsen repeatedly until at most `target` vertices remain (or matching
/// stalls, shrinking a level by less than 5% — stars and cliques defeat
/// edge matching). Returns the hierarchy from finest to coarsest; empty
/// when `graph` is already small enough.
///
/// This is a standalone Graph-level utility (for building hierarchies to
/// inspect, visualise, or feed other multilevel algorithms); the Fiedler
/// solver builds its own hierarchy on CSR Laplacians internally and
/// additionally bounds levels by its block width, so the two need not
/// produce identical level sets for the same graph.
pub fn coarsen_to_size(graph: &Graph, target: usize) -> Result<Vec<GraphCoarsening>, GraphError> {
    let mut levels: Vec<GraphCoarsening> = Vec::new();
    let mut current = graph.num_vertices();
    while current > target.max(1) {
        let step = match levels.last() {
            None => coarsen(graph)?,
            Some(prev) => coarsen(&prev.coarse)?,
        };
        let next = step.coarse.num_vertices();
        if next >= (current as f64 * MIN_SHRINK) as usize {
            break; // matching-resistant (or edgeless) graph: stalled
        }
        levels.push(step);
        current = next;
    }
    Ok(levels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::{Connectivity, GridSpec};

    #[test]
    fn grid_roughly_halves() {
        let g = GridSpec::new(&[10, 10]).graph(Connectivity::Orthogonal);
        let step = coarsen(&g).unwrap();
        assert!(step.coarse.num_vertices() >= 50);
        assert!(step.coarse.num_vertices() <= 60);
        assert_eq!(step.parent.len(), 100);
        assert!(step.parent.iter().all(|&p| p < step.coarse.num_vertices()));
    }

    #[test]
    fn coarse_laplacian_is_galerkin_product() {
        let g = GridSpec::new(&[6, 5]).graph(Connectivity::Full);
        let step = coarsen(&g).unwrap();
        let fine_lap = g.laplacian();
        let nc = step.coarse.num_vertices();
        let x: Vec<f64> = (0..nc).map(|i| (i as f64 * 0.7).sin()).collect();
        let lpx = fine_lap.matvec(&step.prolong(&x)).unwrap();
        let mut restricted = vec![0.0; nc];
        for (v, &p) in step.parent.iter().enumerate() {
            restricted[p] += lpx[v];
        }
        let direct = step.coarse.laplacian().matvec(&x).unwrap();
        for i in 0..nc {
            assert!((restricted[i] - direct[i]).abs() < 1e-10, "row {i}");
        }
    }

    #[test]
    fn weights_accumulate_on_contraction() {
        // Square 0-1-2-3-0: contracting one pair merges the two edges that
        // connected the pair to a common neighbour... on a 4-cycle every
        // vertex pair is matched, so the coarse graph is 2 vertices joined
        // by the two cross edges (weight 2).
        let mut g = Graph::new(4);
        g.add_edge(0, 1).unwrap();
        g.add_edge(1, 2).unwrap();
        g.add_edge(2, 3).unwrap();
        g.add_edge(3, 0).unwrap();
        let step = coarsen(&g).unwrap();
        assert_eq!(step.coarse.num_vertices(), 2);
        assert_eq!(step.coarse.edge_weight(0, 1), 2.0);
    }

    #[test]
    fn connected_graph_stays_connected() {
        let g = GridSpec::new(&[9, 7]).graph(Connectivity::Orthogonal);
        let step = coarsen(&g).unwrap();
        step.coarse.require_connected().unwrap();
    }

    #[test]
    fn hierarchy_reaches_target() {
        let g = GridSpec::new(&[16, 16]).graph(Connectivity::Orthogonal);
        let levels = coarsen_to_size(&g, 20).unwrap();
        assert!(!levels.is_empty());
        let coarsest = &levels.last().unwrap().coarse;
        assert!(coarsest.num_vertices() <= 20);
        coarsest.require_connected().unwrap();
        // Already-small graphs need no levels.
        assert!(coarsen_to_size(&g, 256).unwrap().is_empty());
    }

    #[test]
    fn edgeless_graph_stops_without_progress() {
        let g = Graph::new(5);
        let step = coarsen(&g).unwrap();
        assert_eq!(step.coarse.num_vertices(), 5); // all singletons
        assert!(coarsen_to_size(&g, 2).unwrap().is_empty());
    }

    #[test]
    fn prolong_is_piecewise_constant() {
        let g = GridSpec::new(&[4, 4]).graph(Connectivity::Orthogonal);
        let step = coarsen(&g).unwrap();
        let x: Vec<f64> = (0..step.coarse.num_vertices()).map(|i| i as f64).collect();
        let fine = step.prolong(&x);
        for (v, &p) in step.parent.iter().enumerate() {
            assert_eq!(fine[v], x[p]);
        }
    }
}
