//! Breadth-first traversal and connectivity analysis.
//!
//! Spectral LPM is only defined on connected graphs (λ₂ > 0 iff connected —
//! Fiedler's theorem). The graph layer uses BFS to verify that before any
//! eigenwork starts, and the query simulator uses BFS distances to build
//! distance-bounded pair workloads.

use crate::graph::Graph;

/// Breadth-first search from `source`, returning hop distances
/// (`usize::MAX` for unreachable vertices).
pub fn bfs_distances(g: &Graph, source: usize) -> Vec<usize> {
    assert!(source < g.num_vertices(), "BFS source out of range");
    let adj = g.adjacency_lists();
    let mut dist = vec![usize::MAX; g.num_vertices()];
    let mut queue = std::collections::VecDeque::new();
    dist[source] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        for &v in &adj[u] {
            if dist[v] == usize::MAX {
                dist[v] = dist[u] + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Label every vertex with a component id in `0..num_components`, assigned in
/// order of first discovery.
pub fn connected_components(g: &Graph) -> Vec<usize> {
    let n = g.num_vertices();
    let adj = g.adjacency_lists();
    let mut comp = vec![usize::MAX; n];
    let mut next = 0usize;
    let mut queue = std::collections::VecDeque::new();
    for s in 0..n {
        if comp[s] != usize::MAX {
            continue;
        }
        comp[s] = next;
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            for &v in &adj[u] {
                if comp[v] == usize::MAX {
                    comp[v] = next;
                    queue.push_back(v);
                }
            }
        }
        next += 1;
    }
    comp
}

/// Number of connected components.
pub fn num_components(g: &Graph) -> usize {
    connected_components(g)
        .into_iter()
        .max()
        .map_or(0, |m| m + 1)
}

/// True when the graph is connected (the empty graph counts as connected).
pub fn is_connected(g: &Graph) -> bool {
    g.num_vertices() == 0 || num_components(g) == 1
}

/// Graph diameter in hops (exact, all-pairs BFS — intended for the small
/// worked-example graphs, O(V·E)). Returns `None` for disconnected or empty
/// graphs.
pub fn diameter(g: &Graph) -> Option<usize> {
    let n = g.num_vertices();
    if n == 0 || !is_connected(g) {
        return None;
    }
    let mut best = 0usize;
    for s in 0..n {
        let d = bfs_distances(g, s);
        for &v in &d {
            if v != usize::MAX {
                best = best.max(v);
            }
        }
    }
    Some(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::{Connectivity, GridSpec};

    fn path(n: usize) -> Graph {
        let mut g = Graph::new(n);
        for i in 0..n - 1 {
            g.add_edge(i, i + 1).unwrap();
        }
        g
    }

    #[test]
    fn bfs_on_path() {
        let g = path(5);
        assert_eq!(bfs_distances(&g, 0), vec![0, 1, 2, 3, 4]);
        assert_eq!(bfs_distances(&g, 2), vec![2, 1, 0, 1, 2]);
    }

    #[test]
    fn bfs_unreachable_is_max() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1).unwrap();
        let d = bfs_distances(&g, 0);
        assert_eq!(d[2], usize::MAX);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bfs_bad_source_panics() {
        bfs_distances(&path(3), 5);
    }

    #[test]
    fn components_of_two_paths() {
        let mut g = Graph::new(5);
        g.add_edge(0, 1).unwrap();
        g.add_edge(3, 4).unwrap();
        let c = connected_components(&g);
        assert_eq!(c[0], c[1]);
        assert_eq!(c[3], c[4]);
        assert_ne!(c[0], c[2]);
        assert_ne!(c[0], c[3]);
        assert_eq!(num_components(&g), 3);
        assert!(!is_connected(&g));
    }

    #[test]
    fn grid_bfs_matches_manhattan() {
        // On an orthogonal grid graph, hop distance == Manhattan distance.
        let spec = GridSpec::new(&[4, 4]);
        let g = spec.graph(Connectivity::Orthogonal);
        let d = bfs_distances(&g, spec.index_of(&[0, 0]));
        for p in spec.iter_points() {
            assert_eq!(d[spec.index_of(&p)], GridSpec::manhattan(&[0, 0], &p));
        }
    }

    #[test]
    fn grid_full_bfs_matches_chebyshev() {
        let spec = GridSpec::new(&[4, 4]);
        let g = spec.graph(Connectivity::Full);
        let d = bfs_distances(&g, spec.index_of(&[0, 0]));
        for p in spec.iter_points() {
            assert_eq!(d[spec.index_of(&p)], GridSpec::chebyshev(&[0, 0], &p));
        }
    }

    #[test]
    fn diameter_of_path_and_grid() {
        assert_eq!(diameter(&path(6)), Some(5));
        let spec = GridSpec::new(&[3, 3]);
        assert_eq!(diameter(&spec.graph(Connectivity::Orthogonal)), Some(4));
        assert_eq!(diameter(&spec.graph(Connectivity::Full)), Some(2));
    }

    #[test]
    fn diameter_of_disconnected_is_none() {
        let g = Graph::new(3);
        assert_eq!(diameter(&g), None);
    }

    #[test]
    fn empty_graph_is_connected() {
        let g = Graph::new(0);
        assert!(is_connected(&g));
        assert_eq!(num_components(&g), 0);
    }
}
