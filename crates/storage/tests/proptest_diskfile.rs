//! Property tests for the out-of-core page file: on random orders and
//! geometries, build → write → reopen must hand back exactly the bytes
//! and accounting the in-memory store produces — and a file damaged at
//! any single point (truncation, one flipped bit) must surface a typed
//! [`StorageError`], never a panic, attributing frame damage to the one
//! page it hit.

use proptest::prelude::*;
use slpm_storage::diskfile::{FRAME_CHECKSUM_LEN, HEADER_LEN};
use slpm_storage::{write_page_file, PageFile, PageLayout, PageMapper, PageStore, StorageError};
use spectral_lpm::LinearOrder;
use std::path::PathBuf;

/// A self-cleaning unique temp path (no tempfile crate offline).
struct TempFile(PathBuf);

impl TempFile {
    fn new(tag: &str, case: u64) -> Self {
        TempFile(std::env::temp_dir().join(format!(
            "slpm-proptest-{}-{tag}-{case}.pages",
            std::process::id()
        )))
    }
}

impl Drop for TempFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

/// `(order, records_per_page, record_size, case_tag)`: a random
/// permutation (coprime stride + offset) over 1..=96 records, page and
/// record geometry spanning ragged tails and single-record pages.
fn file_case() -> impl Strategy<Value = (LinearOrder, usize, usize, u64)> {
    (
        1usize..=96,
        0usize..=95,
        0usize..=5,
        1usize..=7,
        8usize..=24,
        0u64..u64::MAX,
    )
        .prop_map(|(n, stride, offset, rpp, record_size, tag)| {
            // Strides coprime to any n: map v -> (v * s + offset) % n with
            // s drawn from primes above 96.
            let s = [97usize, 101, 103, 107, 109][stride % 5];
            let ranks: Vec<usize> = (0..n).map(|v| (v * s + offset) % n).collect();
            let order = LinearOrder::from_ranks(ranks).expect("coprime stride permutes");
            (order, rpp, record_size, tag)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn disk_store_round_trips_bitwise((order, rpp, record_size, tag) in file_case()) {
        let mapper = PageMapper::new(&order, PageLayout::new(rpp));
        let tmp = TempFile::new("roundtrip", tag);
        let header = write_page_file(&tmp.0, &mapper, record_size).expect("writes");
        prop_assert_eq!(header.num_records as usize, order.len());
        prop_assert_eq!(header.num_pages as usize, mapper.num_pages());

        let memory = PageStore::build(&mapper, order.len(), record_size);
        let disk = PageStore::open(&tmp.0, &mapper, record_size).expect("reopens");
        prop_assert!(disk.is_disk_backed());

        // Every record's payload, addressed through the order, is the
        // deterministic function of its vertex — identically on both
        // backings.
        for v in 0..order.len() {
            prop_assert_eq!(&disk.read_record(v)[..], &memory.expected_record(v)[..]);
            prop_assert_eq!(&disk.read_record(v)[..], &memory.read_record(v)[..]);
        }
        // Every page is bitwise identical, and run reads match single
        // reads on the disk backing.
        for page in 0..mapper.num_pages() {
            prop_assert_eq!(&disk.read_page(page)[..], &memory.read_page(page)[..]);
        }
        let run = disk.read_run(0, mapper.num_pages()).expect("full-file run");
        for (page, bytes) in run.iter().enumerate() {
            prop_assert_eq!(&bytes[..], &memory.read_page(page)[..]);
        }

        // Query accounting: the same vertex set charges the same reads
        // (deltas — the comparison loops above drove different shapes of
        // traffic through each store).
        let (mem_before, disk_before) = (memory.total_reads(), disk.total_reads());
        memory.serve_query(0..order.len());
        disk.serve_query(0..order.len());
        prop_assert_eq!(
            disk.total_reads() - disk_before,
            memory.total_reads() - mem_before
        );
    }

    #[test]
    fn truncation_is_a_typed_error_not_a_panic(
        (order, rpp, record_size, tag) in file_case(),
        cut in 0u64..u64::MAX,
    ) {
        let mapper = PageMapper::new(&order, PageLayout::new(rpp));
        let tmp = TempFile::new("truncate", tag);
        write_page_file(&tmp.0, &mapper, record_size).expect("writes");
        let full = std::fs::read(&tmp.0).expect("readback");
        let keep = (cut as usize) % full.len();
        std::fs::write(&tmp.0, &full[..keep]).expect("truncate");
        match PageFile::open(&tmp.0) {
            Err(StorageError::Truncated { expected, actual }) => {
                // A cut inside the header can only promise the header
                // length; past it, the header names the full file.
                let want = if keep < HEADER_LEN {
                    HEADER_LEN as u64
                } else {
                    full.len() as u64
                };
                prop_assert_eq!(expected, want);
                prop_assert_eq!(actual, keep as u64);
            }
            other => prop_assert!(false, "expected Truncated, got {:?}", other),
        }
    }

    #[test]
    fn a_single_bit_flip_is_caught_and_attributed(
        (order, rpp, record_size, tag) in file_case(),
        pos in 0u64..u64::MAX,
        bit in 0u8..8,
    ) {
        let mapper = PageMapper::new(&order, PageLayout::new(rpp));
        let tmp = TempFile::new("bitflip", tag);
        write_page_file(&tmp.0, &mapper, record_size).expect("writes");
        let mut bytes = std::fs::read(&tmp.0).expect("readback");
        let pos = (pos as usize) % bytes.len();
        bytes[pos] ^= 1 << bit;
        std::fs::write(&tmp.0, &bytes).expect("rewrite");

        if pos < HEADER_LEN {
            // Header damage fails eagerly at open, with a typed error.
            match PageFile::open(&tmp.0) {
                Err(StorageError::BadMagic)
                | Err(StorageError::ChecksumMismatch { page: usize::MAX })
                | Err(StorageError::VersionMismatch { .. })
                | Err(StorageError::Truncated { .. })
                | Err(StorageError::GeometryMismatch { .. }) => {}
                other => prop_assert!(false, "header flip at {}: {:?}", pos, other),
            }
        } else {
            // Frame damage: exactly the page holding the flipped byte
            // fails its read; every other page still round-trips.
            let frame_len = rpp * record_size + FRAME_CHECKSUM_LEN;
            let damaged = (pos - HEADER_LEN) / frame_len;
            let mut file = PageFile::open(&tmp.0).expect("header intact");
            for page in 0..mapper.num_pages() {
                let got = file.read_page(page);
                if page == damaged {
                    prop_assert_eq!(
                        got.unwrap_err(),
                        StorageError::ChecksumMismatch { page }
                    );
                } else {
                    prop_assert!(got.is_ok(), "undamaged page {} must read", page);
                }
            }
        }
    }
}
