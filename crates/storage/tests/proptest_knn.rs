//! Property tests for the best-first kNN planner: on random point sets —
//! dimensions 2 and 3, with a coordinate range small enough that
//! duplicate points are common, and `k` frequently at or beyond the point
//! count — [`PackedRTree::knn_best_first`] must return exactly the brute
//! force answer (score every point, sort by `(Chebyshev distance, id)`,
//! truncate to `k`) while visiting each tree node at most once.

use proptest::prelude::*;
use slpm_storage::{chebyshev, PackedRTree};
use spectral_lpm::LinearOrder;

/// Brute-force reference: the k lexicographically smallest
/// `(distance, id)` pairs.
fn brute_knn(points: &[Vec<i64>], center: &[i64], k: usize) -> Vec<usize> {
    let mut scored: Vec<(i64, usize)> = points
        .iter()
        .enumerate()
        .map(|(i, p)| (chebyshev(center, p), i))
        .collect();
    scored.sort_unstable();
    scored.truncate(k);
    scored.into_iter().map(|(_, id)| id).collect()
}

/// `(points, center, k, fanout)` in a shared dimensionality of 2 or 3.
/// Coordinates live in a tight range so duplicates (exact ties at every
/// distance) occur regularly; `k` ranges past the point count.
fn knn_case() -> impl Strategy<Value = (Vec<Vec<i64>>, Vec<i64>, usize, usize)> {
    (2usize..=3).prop_flat_map(|dim| {
        (
            proptest::collection::vec(proptest::collection::vec(-5i64..=5, dim), 1..=48),
            proptest::collection::vec(-8i64..=8, dim),
            0usize..=56,
            2usize..=5,
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn best_first_knn_matches_brute_force((points, center, k, fanout) in knn_case()) {
        let order = LinearOrder::identity(points.len());
        let tree = PackedRTree::pack(&points, &order, fanout);
        let (got, cost) = tree.knn_best_first(&center, k);
        prop_assert_eq!(&got, &brute_knn(&points, &center, k));
        prop_assert_eq!(got.len(), k.min(points.len()));
        prop_assert_eq!(cost.results, got.len());
        // Best-first never re-visits: counters are bounded by the tree.
        prop_assert!(cost.nodes_visited <= tree.num_nodes());
        prop_assert!(cost.leaves_visited <= tree.num_leaves());
        if k > 0 {
            prop_assert!(cost.leaves_visited >= 1);
        }
    }

    #[test]
    fn best_first_knn_is_scrambled_order_invariant(
        (points, center, k, fanout) in knn_case(),
        stride in 1usize..=7,
    ) {
        // The answer is a property of the point set, not of the packing
        // order: a scrambled (coprime-stride) order must return the
        // identical result list, only at different node cost.
        let n = points.len();
        let order = LinearOrder::identity(n);
        let scramble = LinearOrder::from_ranks(
            (0..n).map(|v| (v * stride) % n).collect(),
        );
        // A non-coprime stride is not a permutation; skip those draws.
        if let Ok(scramble) = scramble {
            let (a, _) = PackedRTree::pack(&points, &order, fanout).knn_best_first(&center, k);
            let (b, _) = PackedRTree::pack(&points, &scramble, fanout).knn_best_first(&center, k);
            prop_assert_eq!(a, b);
        }
    }
}
