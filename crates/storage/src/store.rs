//! A page store with access accounting over two interchangeable backings.
//!
//! [`PageStore`] serves page payloads (via [`bytes::Bytes`], cheaply
//! shareable) for a record set laid out by a [`PageMapper`], and counts
//! page reads so examples and tests can report true I/O numbers for a
//! workload rather than analytic estimates. Payloads come from one of two
//! backings behind the same interface:
//!
//! * **Memory** ([`PageStore::build`] and friends) — pages materialised up
//!   front, reads are clones; the fast path for data that fits in RAM and
//!   the bitwise reference for the disk tier.
//! * **Disk** ([`PageStore::open`] / [`PageStore::open_shard_placed`]) — a
//!   [`crate::diskfile::PageFile`]; reads seek and fault checksummed
//!   frames off the file, and failures surface as typed
//!   [`StorageError`]s through [`PageStore::try_read_page`].
//!
//! The two backings are **bitwise interchangeable**: same payloads, same
//! read counts, same query accounting — the serving layer's parity tests
//! hold the engine to that.
//!
//! A store can also hold only a *slice* of the global page set
//! ([`PageStore::build_shard`]): the serving layer partitions the pages of
//! one linear order across shards, and each shard materialises payloads
//! for its owned pages only, while keeping the **global** page ids and
//! record ids — so a record read through any shard returns exactly the
//! bytes the unsharded store would.

use crate::diskfile::{PageFile, StorageError};
use crate::pages::PageMapper;
use bytes::{Bytes, BytesMut};
use std::cell::{Cell, RefCell};
use std::path::Path;
use std::sync::Arc;

/// A fixed-size record payload generator: record `v`'s bytes are a
/// deterministic function of its id, so tests can verify reads return the
/// right data. Shared with [`crate::diskfile`]'s writer so a packed file
/// holds bitwise the payloads an in-memory build materialises.
pub(crate) fn record_payload(v: usize, record_size: usize) -> Vec<u8> {
    (0..record_size)
        .map(|i| ((v.wrapping_mul(31).wrapping_add(i)) & 0xFF) as u8)
        .collect()
}

/// Where page payloads live.
enum Backing {
    /// Payloads of the owned pages, materialised in ascending global-id
    /// order (indexed by local slot).
    Memory(Vec<Bytes>),
    /// A disk page file; reads fault frames in by **global** page id.
    /// `RefCell` because reads seek a shared file handle — the store is
    /// already single-threaded (`Cell` counters), one handle per slice.
    Disk(RefCell<PageFile>),
}

/// A page store: pages hold the records assigned by a [`PageMapper`],
/// reads are counted, payloads come from memory or a disk page file.
///
/// Pages are addressed by their **global** id everywhere; a shard-slice
/// store (see [`PageStore::build_shard`]) simply owns payloads for a
/// subset of those ids.
pub struct PageStore {
    /// Payload source (in-memory pages or an open page file).
    backing: Backing,
    /// Global id of each owned page (`page_ids[local] = global`).
    page_ids: Vec<usize>,
    /// Global page id → owned-slot index (`usize::MAX` = not owned).
    local_of: Vec<usize>,
    /// Records per page and record size (geometry).
    record_size: usize,
    /// Vertex → (global page, slot) placement; `Arc`-shared so S shard
    /// slices of one store hold one copy, not S.
    placement: Arc<Vec<(usize, usize)>>,
    /// Number of page reads served.
    reads: Cell<usize>,
    /// One-shot armed read fault: the next demand read of this page fails
    /// with [`StorageError::Injected`] — on either backing, so fault
    /// injection cannot break memory/disk parity.
    armed_fault: Cell<Option<usize>>,
}

impl PageStore {
    /// Build a store for `order_len` records laid out by `mapper`, each
    /// record `record_size` bytes.
    pub fn build(mapper: &PageMapper, order_len: usize, record_size: usize) -> Self {
        let all: Vec<usize> = (0..mapper.num_pages()).collect();
        PageStore::build_shard(mapper, order_len, record_size, &all)
    }

    /// The global vertex → (page, slot) placement of `mapper`'s layout:
    /// records sit **in linear order within their page** (slot = rank mod
    /// page size). Computed in O(n) and `Arc`-shared so a fleet of shard
    /// slices can reuse one copy via [`PageStore::build_shard_placed`].
    pub fn placement_of(mapper: &PageMapper) -> Arc<Vec<(usize, usize)>> {
        let rpp = mapper.layout().records_per_page;
        Arc::new(
            (0..mapper.num_records())
                .map(|v| {
                    let position = mapper.position_of(v);
                    (position / rpp, position % rpp)
                })
                .collect(),
        )
    }

    /// Build a store holding only the pages `owned` (global page ids) of
    /// the layout described by `mapper` — one shard's slice of the store.
    ///
    /// Record ids, page ids, slots and payloads are identical to the full
    /// store's; only the materialised subset differs, so a sharded fleet
    /// whose owned sets partition `0..mapper.num_pages()` serves exactly
    /// the bytes of the unsharded store. Reading a page outside `owned`
    /// panics (a routing bug in the caller). When building many slices of
    /// one store, compute the placement once with
    /// [`PageStore::placement_of`] and use
    /// [`PageStore::build_shard_placed`] instead.
    ///
    /// # Panics
    /// Panics when `owned` names a page `≥ mapper.num_pages()` or
    /// `order_len` differs from the mapper's record count.
    pub fn build_shard(
        mapper: &PageMapper,
        order_len: usize,
        record_size: usize,
        owned: &[usize],
    ) -> Self {
        assert_eq!(
            order_len,
            mapper.num_records(),
            "order length differs from the mapper's record count"
        );
        PageStore::build_shard_placed(mapper, record_size, owned, PageStore::placement_of(mapper))
    }

    /// [`PageStore::build_shard`] with a precomputed, shared placement
    /// (must be `mapper`'s own, i.e. [`PageStore::placement_of`]).
    ///
    /// # Panics
    /// Panics when `owned` names a page `≥ mapper.num_pages()` or the
    /// placement's length differs from the mapper's record count.
    pub fn build_shard_placed(
        mapper: &PageMapper,
        record_size: usize,
        owned: &[usize],
        placement: Arc<Vec<(usize, usize)>>,
    ) -> Self {
        let num_global = mapper.num_pages();
        assert_eq!(
            placement.len(),
            mapper.num_records(),
            "placement does not cover the mapper's records"
        );
        let (page_ids, local_of) = PageStore::owned_index(owned, num_global);
        let rpp = mapper.layout().records_per_page;
        let mut page_bufs: Vec<BytesMut> = (0..page_ids.len())
            .map(|_| BytesMut::zeroed(rpp * record_size))
            .collect();
        // Placement is global; payloads materialise for owned pages only.
        for (v, &(p, slot)) in placement.iter().enumerate() {
            if local_of[p] != usize::MAX {
                let payload = record_payload(v, record_size);
                page_bufs[local_of[p]][slot * record_size..(slot + 1) * record_size]
                    .copy_from_slice(&payload);
            }
        }
        PageStore {
            backing: Backing::Memory(page_bufs.into_iter().map(BytesMut::freeze).collect()),
            page_ids,
            local_of,
            record_size,
            placement,
            reads: Cell::new(0),
            armed_fault: Cell::new(None),
        }
    }

    /// Open a disk-backed store over the whole page set of `path`.
    ///
    /// The file's geometry (record size, page size, record count, order
    /// digest) must match `mapper`; see [`PageStore::open_shard_placed`].
    pub fn open(
        path: &Path,
        mapper: &PageMapper,
        record_size: usize,
    ) -> Result<Self, StorageError> {
        let all: Vec<usize> = (0..mapper.num_pages()).collect();
        PageStore::open_shard_placed(
            path,
            mapper,
            record_size,
            &all,
            PageStore::placement_of(mapper),
        )
    }

    /// Open a disk-backed shard slice: the counterpart of
    /// [`PageStore::build_shard_placed`] that faults owned pages from the
    /// page file at `path` instead of materialising them.
    ///
    /// Validates the file header (magic, version, checksum, length) and
    /// its geometry against `mapper` + `record_size` — including the
    /// **order digest**, so a file packed under a different linear order
    /// is rejected with [`StorageError::GeometryMismatch`] instead of
    /// silently serving wrong slots. Reading through the returned store is
    /// bitwise identical to the in-memory build, payloads and accounting
    /// both.
    ///
    /// # Panics
    /// Panics when `owned` names a page `≥ mapper.num_pages()` or the
    /// placement's length differs from the mapper's record count — the
    /// same caller-bug contract as the in-memory constructors. Everything
    /// about the *file* is a typed error.
    pub fn open_shard_placed(
        path: &Path,
        mapper: &PageMapper,
        record_size: usize,
        owned: &[usize],
        placement: Arc<Vec<(usize, usize)>>,
    ) -> Result<Self, StorageError> {
        assert_eq!(
            placement.len(),
            mapper.num_records(),
            "placement does not cover the mapper's records"
        );
        let file = PageFile::open(path)?;
        file.check_geometry(mapper, record_size)?;
        let (page_ids, local_of) = PageStore::owned_index(owned, mapper.num_pages());
        Ok(PageStore {
            backing: Backing::Disk(RefCell::new(file)),
            page_ids,
            local_of,
            record_size,
            placement,
            reads: Cell::new(0),
            armed_fault: Cell::new(None),
        })
    }

    /// Sorted, deduped owned-page ids plus the global → local slot index.
    fn owned_index(owned: &[usize], num_global: usize) -> (Vec<usize>, Vec<usize>) {
        let mut page_ids: Vec<usize> = owned.to_vec();
        page_ids.sort_unstable();
        page_ids.dedup();
        if let Some(&last) = page_ids.last() {
            assert!(last < num_global, "owned page {last} ≥ {num_global} pages");
        }
        let mut local_of = vec![usize::MAX; num_global];
        for (local, &global) in page_ids.iter().enumerate() {
            local_of[global] = local;
        }
        (page_ids, local_of)
    }

    /// Number of pages this store owns (= all pages for a full build).
    pub fn num_pages(&self) -> usize {
        self.page_ids.len()
    }

    /// Whether reads fault pages off a disk page file (vs. memory).
    pub fn is_disk_backed(&self) -> bool {
        matches!(self.backing, Backing::Disk(_))
    }

    /// Whether this store owns (materialises) global page `page`.
    pub fn owns_page(&self, page: usize) -> bool {
        self.local_of.get(page).is_some_and(|&l| l != usize::MAX)
    }

    /// Global ids of the owned pages, ascending.
    pub fn page_ids(&self) -> &[usize] {
        &self.page_ids
    }

    /// Read one page by **global** id (counted), returning its payload.
    ///
    /// # Panics
    /// Panics when this store slice does not own `page`, or on a disk
    /// error — the legacy infallible path; fallible callers (the serving
    /// replay loop) use [`PageStore::try_read_page`].
    pub fn read_page(&self, page: usize) -> Bytes {
        self.try_read_page(page).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Read one page by **global** id (counted), with typed failures:
    /// unowned pages, disk errors, corruption, and armed injected faults
    /// all come back as [`StorageError`]s instead of panics.
    pub fn try_read_page(&self, page: usize) -> Result<Bytes, StorageError> {
        if self.armed_fault.get() == Some(page) {
            self.armed_fault.set(None);
            return Err(StorageError::Injected { page });
        }
        let local = self
            .local_of
            .get(page)
            .copied()
            .filter(|&l| l != usize::MAX)
            .ok_or(StorageError::PageNotOwned { page })?;
        self.reads.set(self.reads.get() + 1);
        match &self.backing {
            Backing::Memory(pages) => Ok(pages[local].clone()),
            Backing::Disk(file) => file.borrow_mut().read_page(page),
        }
    }

    /// Read a contiguous run of `count` owned pages starting at global id
    /// `start` — the readahead primitive. On disk this is **one seek**
    /// plus one sequential transfer; in memory it is `count` clones. The
    /// run counts `count` reads on both backings, keeping accounting
    /// bitwise identical.
    ///
    /// Every page of the run must be owned by this slice.
    pub fn read_run(&self, start: usize, count: usize) -> Result<Vec<Bytes>, StorageError> {
        for page in start..start + count {
            let owned = self.local_of.get(page).is_some_and(|&l| l != usize::MAX);
            if !owned {
                return Err(StorageError::PageNotOwned { page });
            }
        }
        self.reads.set(self.reads.get() + count);
        match &self.backing {
            Backing::Memory(pages) => Ok((start..start + count)
                .map(|p| pages[self.local_of[p]].clone())
                .collect()),
            Backing::Disk(file) => file.borrow_mut().read_run(start, count),
        }
    }

    /// Arm a one-shot injected fault: the next [`PageStore::try_read_page`]
    /// of `page` fails with [`StorageError::Injected`]. This is how the
    /// serving layer's `pagerr:P@N` fault plan manifests as a *real* error
    /// travelling the real read path — identically on both backings.
    pub fn arm_read_error(&self, page: usize) {
        self.armed_fault.set(Some(page));
    }

    /// Fetch one record by vertex id, reading its page.
    pub fn read_record(&self, v: usize) -> Bytes {
        let (page, slot) = self.placement[v];
        let data = self.read_page(page);
        data.slice(slot * self.record_size..(slot + 1) * self.record_size)
    }

    /// Serve a query over vertex ids: reads each distinct page once,
    /// returns the number of pages read for this query.
    ///
    /// On a shard slice, every queried vertex must live on an owned page
    /// (the sharded engine routes per-shard page lists instead).
    pub fn serve_query<I: IntoIterator<Item = usize>>(&self, vertices: I) -> usize {
        let mut pages: Vec<usize> = vertices.into_iter().map(|v| self.placement[v].0).collect();
        pages.sort_unstable();
        pages.dedup();
        for &p in &pages {
            let _ = self.read_page(p);
        }
        pages.len()
    }

    /// Total page reads served so far.
    pub fn total_reads(&self) -> usize {
        self.reads.get()
    }

    /// Expected payload of record `v` (for verification).
    pub fn expected_record(&self, v: usize) -> Vec<u8> {
        record_payload(v, self.record_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pages::PageLayout;
    use spectral_lpm::LinearOrder;

    fn store() -> PageStore {
        let order = LinearOrder::identity(10);
        let mapper = PageMapper::new(&order, PageLayout::new(4));
        PageStore::build(&mapper, 10, 8)
    }

    #[test]
    fn geometry() {
        let s = store();
        assert_eq!(s.num_pages(), 3);
    }

    #[test]
    fn records_roundtrip() {
        let s = store();
        for v in 0..10 {
            let got = s.read_record(v);
            assert_eq!(&got[..], &s.expected_record(v)[..], "record {v}");
        }
    }

    #[test]
    fn reads_are_counted() {
        let s = store();
        assert_eq!(s.total_reads(), 0);
        let _ = s.read_page(0);
        let _ = s.read_record(9);
        assert_eq!(s.total_reads(), 2);
    }

    #[test]
    fn serve_query_reads_distinct_pages() {
        let s = store();
        // Vertices 0..4 live on page 0 under identity order (4 per page).
        let n = s.serve_query([0, 1, 2, 3]);
        assert_eq!(n, 1);
        assert_eq!(s.total_reads(), 1);
        let n = s.serve_query([0, 5, 9]);
        assert_eq!(n, 3);
    }

    #[test]
    fn shard_slice_serves_global_ids_and_bytes() {
        // 10 records, 4 per page → pages {0,1,2}; a shard owning {0,2}
        // must return exactly the full store's bytes for those pages.
        let order = LinearOrder::identity(10);
        let mapper = PageMapper::new(&order, PageLayout::new(4));
        let full = PageStore::build(&mapper, 10, 8);
        let shard = PageStore::build_shard(&mapper, 10, 8, &[2, 0]);
        assert_eq!(shard.num_pages(), 2);
        assert_eq!(shard.page_ids(), &[0, 2]);
        assert!(shard.owns_page(0) && !shard.owns_page(1) && shard.owns_page(2));
        for page in [0usize, 2] {
            assert_eq!(&shard.read_page(page)[..], &full.read_page(page)[..]);
        }
        // Records on owned pages read back with their global ids.
        for v in [0usize, 1, 2, 3, 8, 9] {
            assert_eq!(&shard.read_record(v)[..], &shard.expected_record(v)[..]);
        }
        assert_eq!(shard.total_reads(), 2 + 6);
    }

    #[test]
    fn shard_slices_share_one_placement() {
        // A fleet of slices built from one placement_of holds ONE copy of
        // the dense placement array, and records sit in linear order
        // within their page (slot = rank mod page size).
        let order = LinearOrder::from_ranks((0..10).rev().collect()).unwrap();
        let mapper = PageMapper::new(&order, PageLayout::new(4));
        let placement = PageStore::placement_of(&mapper);
        assert_eq!(placement.len(), 10);
        for v in 0..10 {
            let rank = order.rank_of(v);
            assert_eq!(placement[v], (rank / 4, rank % 4));
        }
        let a = PageStore::build_shard_placed(&mapper, 8, &[0, 1], Arc::clone(&placement));
        let b = PageStore::build_shard_placed(&mapper, 8, &[2], Arc::clone(&placement));
        assert!(Arc::ptr_eq(&a.placement, &placement));
        assert!(Arc::ptr_eq(&b.placement, &placement));
        for v in 0..10 {
            let s = if a.owns_page(mapper.page_of(v)) {
                &a
            } else {
                &b
            };
            assert_eq!(&s.read_record(v)[..], &s.expected_record(v)[..]);
        }
    }

    #[test]
    #[should_panic(expected = "not owned")]
    fn shard_slice_rejects_unowned_page() {
        let order = LinearOrder::identity(10);
        let mapper = PageMapper::new(&order, PageLayout::new(4));
        let shard = PageStore::build_shard(&mapper, 10, 8, &[0]);
        let _ = shard.read_page(1);
    }

    #[test]
    #[should_panic(expected = "≥")]
    fn shard_slice_rejects_out_of_range_page() {
        let order = LinearOrder::identity(10);
        let mapper = PageMapper::new(&order, PageLayout::new(4));
        let _ = PageStore::build_shard(&mapper, 10, 8, &[3]);
    }

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("slpm-store-{}-{tag}.pages", std::process::id()))
    }

    #[test]
    fn disk_backed_store_is_bitwise_identical_to_memory() {
        let order = LinearOrder::from_ranks((0..10).rev().collect()).unwrap();
        let mapper = PageMapper::new(&order, PageLayout::new(4));
        let path = temp_path("parity");
        crate::diskfile::write_page_file(&path, &mapper, 8).unwrap();
        let mem = PageStore::build(&mapper, 10, 8);
        let disk = PageStore::open(&path, &mapper, 8).unwrap();
        assert!(disk.is_disk_backed() && !mem.is_disk_backed());
        assert_eq!(disk.num_pages(), mem.num_pages());
        for page in 0..mem.num_pages() {
            assert_eq!(&disk.read_page(page)[..], &mem.read_page(page)[..]);
        }
        for v in 0..10 {
            assert_eq!(&disk.read_record(v)[..], &mem.read_record(v)[..]);
        }
        // Accounting is identical too: same reads for the same traffic.
        assert_eq!(disk.total_reads(), mem.total_reads());
        assert_eq!(disk.serve_query([0, 5, 9]), mem.serve_query([0, 5, 9]));
        assert_eq!(disk.total_reads(), mem.total_reads());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn disk_backed_shard_slice_reads_only_owned_pages() {
        let order = LinearOrder::identity(10);
        let mapper = PageMapper::new(&order, PageLayout::new(4));
        let path = temp_path("slice");
        crate::diskfile::write_page_file(&path, &mapper, 8).unwrap();
        let placement = PageStore::placement_of(&mapper);
        let slice =
            PageStore::open_shard_placed(&path, &mapper, 8, &[0, 2], Arc::clone(&placement))
                .unwrap();
        assert_eq!(slice.page_ids(), &[0, 2]);
        let full = PageStore::build(&mapper, 10, 8);
        for page in [0usize, 2] {
            assert_eq!(&slice.read_page(page)[..], &full.read_page(page)[..]);
        }
        assert_eq!(
            slice.try_read_page(1).unwrap_err(),
            StorageError::PageNotOwned { page: 1 }
        );
        // A run through an unowned page is rejected before any read.
        assert_eq!(
            slice.read_run(0, 2).unwrap_err(),
            StorageError::PageNotOwned { page: 1 }
        );
        // Opening against the wrong geometry is a typed error, not UB.
        assert!(matches!(
            PageStore::open_shard_placed(&path, &mapper, 16, &[0], Arc::clone(&placement)),
            Err(StorageError::GeometryMismatch { .. })
        ));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn read_run_matches_single_page_reads_on_both_backings() {
        let order = LinearOrder::identity(16);
        let mapper = PageMapper::new(&order, PageLayout::new(4));
        let path = temp_path("run");
        crate::diskfile::write_page_file(&path, &mapper, 8).unwrap();
        let mem = PageStore::build(&mapper, 16, 8);
        let disk = PageStore::open(&path, &mapper, 8).unwrap();
        for s in [&mem, &disk] {
            let run = s.read_run(1, 3).unwrap();
            assert_eq!(run.len(), 3);
            for (i, bytes) in run.iter().enumerate() {
                assert_eq!(&bytes[..], &s.read_page(1 + i)[..]);
            }
        }
        // A run of k pages counts k reads (plus the 3 singles above).
        assert_eq!(mem.total_reads(), disk.total_reads());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn armed_read_errors_fire_once_on_either_backing() {
        let order = LinearOrder::identity(10);
        let mapper = PageMapper::new(&order, PageLayout::new(4));
        let path = temp_path("armed");
        crate::diskfile::write_page_file(&path, &mapper, 8).unwrap();
        let mem = PageStore::build(&mapper, 10, 8);
        let disk = PageStore::open(&path, &mapper, 8).unwrap();
        for s in [&mem, &disk] {
            s.arm_read_error(1);
            // Other pages still read fine while armed.
            assert!(s.try_read_page(0).is_ok());
            assert_eq!(
                s.try_read_page(1).unwrap_err(),
                StorageError::Injected { page: 1 }
            );
            // One-shot: the retry succeeds, and the failed read was not
            // counted (it never reached storage).
            assert!(s.try_read_page(1).is_ok());
            assert_eq!(s.total_reads(), 2);
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn permuted_order_changes_pages_not_data() {
        // Under a reversed order, records move pages but reads still
        // return the right payloads.
        let order = LinearOrder::from_ranks((0..10).rev().collect()).unwrap();
        let mapper = PageMapper::new(&order, PageLayout::new(4));
        let s = PageStore::build(&mapper, 10, 8);
        for v in 0..10 {
            assert_eq!(&s.read_record(v)[..], &s.expected_record(v)[..]);
        }
    }
}
