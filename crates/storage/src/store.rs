//! An in-memory simulated page store with access accounting.
//!
//! [`PageStore`] materialises actual page payloads (via [`bytes::Bytes`],
//! cheaply shareable) for a record set laid out by a [`PageMapper`], and
//! counts page reads so examples and tests can report true I/O numbers for
//! a workload rather than analytic estimates.

use crate::pages::PageMapper;
use bytes::{Bytes, BytesMut};
use std::cell::Cell;

/// A fixed-size record payload generator: record `v`'s bytes are a
/// deterministic function of its id, so tests can verify reads return the
/// right data.
fn record_payload(v: usize, record_size: usize) -> Vec<u8> {
    (0..record_size)
        .map(|i| ((v.wrapping_mul(31).wrapping_add(i)) & 0xFF) as u8)
        .collect()
}

/// An in-memory page store: pages hold the records assigned by a
/// [`PageMapper`], reads are counted.
pub struct PageStore {
    /// Page payloads.
    pages: Vec<Bytes>,
    /// Records per page and record size (geometry).
    record_size: usize,
    /// Vertex → (page, slot) placement.
    placement: Vec<(usize, usize)>,
    /// Number of page reads served.
    reads: Cell<usize>,
}

impl PageStore {
    /// Build a store for `order_len` records laid out by `mapper`, each
    /// record `record_size` bytes.
    pub fn build(mapper: &PageMapper, order_len: usize, record_size: usize) -> Self {
        let rpp = mapper.layout().records_per_page;
        let mut page_bufs: Vec<BytesMut> = (0..mapper.num_pages())
            .map(|_| BytesMut::zeroed(rpp * record_size))
            .collect();
        let mut placement = vec![(0usize, 0usize); order_len];
        // Slot within page = position within page (derived from the rank
        // the mapper used). Reconstruct by counting records per page in
        // vertex order of ascending page-local placement.
        let mut next_slot = vec![0usize; mapper.num_pages()];
        // Vertices sorted by page then id give deterministic slots.
        let mut by_page: Vec<usize> = (0..order_len).collect();
        by_page.sort_by_key(|&v| (mapper.page_of(v), v));
        for v in by_page {
            let p = mapper.page_of(v);
            let slot = next_slot[p];
            next_slot[p] += 1;
            placement[v] = (p, slot);
            let payload = record_payload(v, record_size);
            page_bufs[p][slot * record_size..(slot + 1) * record_size].copy_from_slice(&payload);
        }
        PageStore {
            pages: page_bufs.into_iter().map(BytesMut::freeze).collect(),
            record_size,
            placement,
            reads: Cell::new(0),
        }
    }

    /// Number of pages in the store.
    pub fn num_pages(&self) -> usize {
        self.pages.len()
    }

    /// Read one page (counted), returning its payload.
    pub fn read_page(&self, page: usize) -> Bytes {
        self.reads.set(self.reads.get() + 1);
        self.pages[page].clone()
    }

    /// Fetch one record by vertex id, reading its page.
    pub fn read_record(&self, v: usize) -> Bytes {
        let (page, slot) = self.placement[v];
        let data = self.read_page(page);
        data.slice(slot * self.record_size..(slot + 1) * self.record_size)
    }

    /// Serve a query over vertex ids: reads each distinct page once,
    /// returns the number of pages read for this query.
    pub fn serve_query<I: IntoIterator<Item = usize>>(&self, vertices: I) -> usize {
        let mut pages: Vec<usize> = vertices.into_iter().map(|v| self.placement[v].0).collect();
        pages.sort_unstable();
        pages.dedup();
        for &p in &pages {
            let _ = self.read_page(p);
        }
        pages.len()
    }

    /// Total page reads served so far.
    pub fn total_reads(&self) -> usize {
        self.reads.get()
    }

    /// Expected payload of record `v` (for verification).
    pub fn expected_record(&self, v: usize) -> Vec<u8> {
        record_payload(v, self.record_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pages::PageLayout;
    use spectral_lpm::LinearOrder;

    fn store() -> PageStore {
        let order = LinearOrder::identity(10);
        let mapper = PageMapper::new(&order, PageLayout::new(4));
        PageStore::build(&mapper, 10, 8)
    }

    #[test]
    fn geometry() {
        let s = store();
        assert_eq!(s.num_pages(), 3);
    }

    #[test]
    fn records_roundtrip() {
        let s = store();
        for v in 0..10 {
            let got = s.read_record(v);
            assert_eq!(&got[..], &s.expected_record(v)[..], "record {v}");
        }
    }

    #[test]
    fn reads_are_counted() {
        let s = store();
        assert_eq!(s.total_reads(), 0);
        let _ = s.read_page(0);
        let _ = s.read_record(9);
        assert_eq!(s.total_reads(), 2);
    }

    #[test]
    fn serve_query_reads_distinct_pages() {
        let s = store();
        // Vertices 0..4 live on page 0 under identity order (4 per page).
        let n = s.serve_query([0, 1, 2, 3]);
        assert_eq!(n, 1);
        assert_eq!(s.total_reads(), 1);
        let n = s.serve_query([0, 5, 9]);
        assert_eq!(n, 3);
    }

    #[test]
    fn permuted_order_changes_pages_not_data() {
        // Under a reversed order, records move pages but reads still
        // return the right payloads.
        let order = LinearOrder::from_ranks((0..10).rev().collect()).unwrap();
        let mapper = PageMapper::new(&order, PageLayout::new(4));
        let s = PageStore::build(&mapper, 10, 8);
        for v in 0..10 {
            assert_eq!(&s.read_record(v)[..], &s.expected_record(v)[..]);
        }
    }
}
