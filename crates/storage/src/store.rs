//! An in-memory simulated page store with access accounting.
//!
//! [`PageStore`] materialises actual page payloads (via [`bytes::Bytes`],
//! cheaply shareable) for a record set laid out by a [`PageMapper`], and
//! counts page reads so examples and tests can report true I/O numbers for
//! a workload rather than analytic estimates.
//!
//! A store can also hold only a *slice* of the global page set
//! ([`PageStore::build_shard`]): the serving layer partitions the pages of
//! one linear order across shards, and each shard materialises payloads
//! for its owned pages only, while keeping the **global** page ids and
//! record ids — so a record read through any shard returns exactly the
//! bytes the unsharded store would.

use crate::pages::PageMapper;
use bytes::{Bytes, BytesMut};
use std::cell::Cell;
use std::sync::Arc;

/// A fixed-size record payload generator: record `v`'s bytes are a
/// deterministic function of its id, so tests can verify reads return the
/// right data.
fn record_payload(v: usize, record_size: usize) -> Vec<u8> {
    (0..record_size)
        .map(|i| ((v.wrapping_mul(31).wrapping_add(i)) & 0xFF) as u8)
        .collect()
}

/// An in-memory page store: pages hold the records assigned by a
/// [`PageMapper`], reads are counted.
///
/// Pages are addressed by their **global** id everywhere; a shard-slice
/// store (see [`PageStore::build_shard`]) simply owns payloads for a
/// subset of those ids.
pub struct PageStore {
    /// Payloads of the owned pages, in ascending global-id order.
    pages: Vec<Bytes>,
    /// Global id of each owned page (`page_ids[local] = global`).
    page_ids: Vec<usize>,
    /// Global page id → owned-slot index (`usize::MAX` = not owned).
    local_of: Vec<usize>,
    /// Records per page and record size (geometry).
    record_size: usize,
    /// Vertex → (global page, slot) placement; `Arc`-shared so S shard
    /// slices of one store hold one copy, not S.
    placement: Arc<Vec<(usize, usize)>>,
    /// Number of page reads served.
    reads: Cell<usize>,
}

impl PageStore {
    /// Build a store for `order_len` records laid out by `mapper`, each
    /// record `record_size` bytes.
    pub fn build(mapper: &PageMapper, order_len: usize, record_size: usize) -> Self {
        let all: Vec<usize> = (0..mapper.num_pages()).collect();
        PageStore::build_shard(mapper, order_len, record_size, &all)
    }

    /// The global vertex → (page, slot) placement of `mapper`'s layout:
    /// records sit **in linear order within their page** (slot = rank mod
    /// page size). Computed in O(n) and `Arc`-shared so a fleet of shard
    /// slices can reuse one copy via [`PageStore::build_shard_placed`].
    pub fn placement_of(mapper: &PageMapper) -> Arc<Vec<(usize, usize)>> {
        let rpp = mapper.layout().records_per_page;
        Arc::new(
            (0..mapper.num_records())
                .map(|v| {
                    let position = mapper.position_of(v);
                    (position / rpp, position % rpp)
                })
                .collect(),
        )
    }

    /// Build a store holding only the pages `owned` (global page ids) of
    /// the layout described by `mapper` — one shard's slice of the store.
    ///
    /// Record ids, page ids, slots and payloads are identical to the full
    /// store's; only the materialised subset differs, so a sharded fleet
    /// whose owned sets partition `0..mapper.num_pages()` serves exactly
    /// the bytes of the unsharded store. Reading a page outside `owned`
    /// panics (a routing bug in the caller). When building many slices of
    /// one store, compute the placement once with
    /// [`PageStore::placement_of`] and use
    /// [`PageStore::build_shard_placed`] instead.
    ///
    /// # Panics
    /// Panics when `owned` names a page `≥ mapper.num_pages()` or
    /// `order_len` differs from the mapper's record count.
    pub fn build_shard(
        mapper: &PageMapper,
        order_len: usize,
        record_size: usize,
        owned: &[usize],
    ) -> Self {
        assert_eq!(
            order_len,
            mapper.num_records(),
            "order length differs from the mapper's record count"
        );
        PageStore::build_shard_placed(mapper, record_size, owned, PageStore::placement_of(mapper))
    }

    /// [`PageStore::build_shard`] with a precomputed, shared placement
    /// (must be `mapper`'s own, i.e. [`PageStore::placement_of`]).
    ///
    /// # Panics
    /// Panics when `owned` names a page `≥ mapper.num_pages()` or the
    /// placement's length differs from the mapper's record count.
    pub fn build_shard_placed(
        mapper: &PageMapper,
        record_size: usize,
        owned: &[usize],
        placement: Arc<Vec<(usize, usize)>>,
    ) -> Self {
        let num_global = mapper.num_pages();
        assert_eq!(
            placement.len(),
            mapper.num_records(),
            "placement does not cover the mapper's records"
        );
        let mut page_ids: Vec<usize> = owned.to_vec();
        page_ids.sort_unstable();
        page_ids.dedup();
        if let Some(&last) = page_ids.last() {
            assert!(last < num_global, "owned page {last} ≥ {num_global} pages");
        }
        let mut local_of = vec![usize::MAX; num_global];
        for (local, &global) in page_ids.iter().enumerate() {
            local_of[global] = local;
        }
        let rpp = mapper.layout().records_per_page;
        let mut page_bufs: Vec<BytesMut> = (0..page_ids.len())
            .map(|_| BytesMut::zeroed(rpp * record_size))
            .collect();
        // Placement is global; payloads materialise for owned pages only.
        for (v, &(p, slot)) in placement.iter().enumerate() {
            if local_of[p] != usize::MAX {
                let payload = record_payload(v, record_size);
                page_bufs[local_of[p]][slot * record_size..(slot + 1) * record_size]
                    .copy_from_slice(&payload);
            }
        }
        PageStore {
            pages: page_bufs.into_iter().map(BytesMut::freeze).collect(),
            page_ids,
            local_of,
            record_size,
            placement,
            reads: Cell::new(0),
        }
    }

    /// Number of pages this store owns (= all pages for a full build).
    pub fn num_pages(&self) -> usize {
        self.pages.len()
    }

    /// Whether this store owns (materialises) global page `page`.
    pub fn owns_page(&self, page: usize) -> bool {
        self.local_of.get(page).is_some_and(|&l| l != usize::MAX)
    }

    /// Global ids of the owned pages, ascending.
    pub fn page_ids(&self) -> &[usize] {
        &self.page_ids
    }

    /// Read one page by **global** id (counted), returning its payload.
    ///
    /// # Panics
    /// Panics when this store slice does not own `page`.
    pub fn read_page(&self, page: usize) -> Bytes {
        let local = self
            .local_of
            .get(page)
            .copied()
            .filter(|&l| l != usize::MAX)
            .unwrap_or_else(|| panic!("page {page} not owned by this store slice"));
        self.reads.set(self.reads.get() + 1);
        self.pages[local].clone()
    }

    /// Fetch one record by vertex id, reading its page.
    pub fn read_record(&self, v: usize) -> Bytes {
        let (page, slot) = self.placement[v];
        let data = self.read_page(page);
        data.slice(slot * self.record_size..(slot + 1) * self.record_size)
    }

    /// Serve a query over vertex ids: reads each distinct page once,
    /// returns the number of pages read for this query.
    ///
    /// On a shard slice, every queried vertex must live on an owned page
    /// (the sharded engine routes per-shard page lists instead).
    pub fn serve_query<I: IntoIterator<Item = usize>>(&self, vertices: I) -> usize {
        let mut pages: Vec<usize> = vertices.into_iter().map(|v| self.placement[v].0).collect();
        pages.sort_unstable();
        pages.dedup();
        for &p in &pages {
            let _ = self.read_page(p);
        }
        pages.len()
    }

    /// Total page reads served so far.
    pub fn total_reads(&self) -> usize {
        self.reads.get()
    }

    /// Expected payload of record `v` (for verification).
    pub fn expected_record(&self, v: usize) -> Vec<u8> {
        record_payload(v, self.record_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pages::PageLayout;
    use spectral_lpm::LinearOrder;

    fn store() -> PageStore {
        let order = LinearOrder::identity(10);
        let mapper = PageMapper::new(&order, PageLayout::new(4));
        PageStore::build(&mapper, 10, 8)
    }

    #[test]
    fn geometry() {
        let s = store();
        assert_eq!(s.num_pages(), 3);
    }

    #[test]
    fn records_roundtrip() {
        let s = store();
        for v in 0..10 {
            let got = s.read_record(v);
            assert_eq!(&got[..], &s.expected_record(v)[..], "record {v}");
        }
    }

    #[test]
    fn reads_are_counted() {
        let s = store();
        assert_eq!(s.total_reads(), 0);
        let _ = s.read_page(0);
        let _ = s.read_record(9);
        assert_eq!(s.total_reads(), 2);
    }

    #[test]
    fn serve_query_reads_distinct_pages() {
        let s = store();
        // Vertices 0..4 live on page 0 under identity order (4 per page).
        let n = s.serve_query([0, 1, 2, 3]);
        assert_eq!(n, 1);
        assert_eq!(s.total_reads(), 1);
        let n = s.serve_query([0, 5, 9]);
        assert_eq!(n, 3);
    }

    #[test]
    fn shard_slice_serves_global_ids_and_bytes() {
        // 10 records, 4 per page → pages {0,1,2}; a shard owning {0,2}
        // must return exactly the full store's bytes for those pages.
        let order = LinearOrder::identity(10);
        let mapper = PageMapper::new(&order, PageLayout::new(4));
        let full = PageStore::build(&mapper, 10, 8);
        let shard = PageStore::build_shard(&mapper, 10, 8, &[2, 0]);
        assert_eq!(shard.num_pages(), 2);
        assert_eq!(shard.page_ids(), &[0, 2]);
        assert!(shard.owns_page(0) && !shard.owns_page(1) && shard.owns_page(2));
        for page in [0usize, 2] {
            assert_eq!(&shard.read_page(page)[..], &full.read_page(page)[..]);
        }
        // Records on owned pages read back with their global ids.
        for v in [0usize, 1, 2, 3, 8, 9] {
            assert_eq!(&shard.read_record(v)[..], &shard.expected_record(v)[..]);
        }
        assert_eq!(shard.total_reads(), 2 + 6);
    }

    #[test]
    fn shard_slices_share_one_placement() {
        // A fleet of slices built from one placement_of holds ONE copy of
        // the dense placement array, and records sit in linear order
        // within their page (slot = rank mod page size).
        let order = LinearOrder::from_ranks((0..10).rev().collect()).unwrap();
        let mapper = PageMapper::new(&order, PageLayout::new(4));
        let placement = PageStore::placement_of(&mapper);
        assert_eq!(placement.len(), 10);
        for v in 0..10 {
            let rank = order.rank_of(v);
            assert_eq!(placement[v], (rank / 4, rank % 4));
        }
        let a = PageStore::build_shard_placed(&mapper, 8, &[0, 1], Arc::clone(&placement));
        let b = PageStore::build_shard_placed(&mapper, 8, &[2], Arc::clone(&placement));
        assert!(Arc::ptr_eq(&a.placement, &placement));
        assert!(Arc::ptr_eq(&b.placement, &placement));
        for v in 0..10 {
            let s = if a.owns_page(mapper.page_of(v)) {
                &a
            } else {
                &b
            };
            assert_eq!(&s.read_record(v)[..], &s.expected_record(v)[..]);
        }
    }

    #[test]
    #[should_panic(expected = "not owned")]
    fn shard_slice_rejects_unowned_page() {
        let order = LinearOrder::identity(10);
        let mapper = PageMapper::new(&order, PageLayout::new(4));
        let shard = PageStore::build_shard(&mapper, 10, 8, &[0]);
        let _ = shard.read_page(1);
    }

    #[test]
    #[should_panic(expected = "≥")]
    fn shard_slice_rejects_out_of_range_page() {
        let order = LinearOrder::identity(10);
        let mapper = PageMapper::new(&order, PageLayout::new(4));
        let _ = PageStore::build_shard(&mapper, 10, 8, &[3]);
    }

    #[test]
    fn permuted_order_changes_pages_not_data() {
        // Under a reversed order, records move pages but reads still
        // return the right payloads.
        let order = LinearOrder::from_ranks((0..10).rev().collect()).unwrap();
        let mapper = PageMapper::new(&order, PageLayout::new(4));
        let s = PageStore::build(&mapper, 10, 8);
        for v in 0..10 {
            assert_eq!(&s.read_record(v)[..], &s.expected_record(v)[..]);
        }
    }
}
