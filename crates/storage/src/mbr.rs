//! Minimum bounding rectangles (MBRs) for the packed R-tree.

use serde::Serialize;

/// An axis-aligned minimum bounding rectangle over integer coordinates,
/// inclusive on both ends.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Mbr {
    /// Inclusive lower corner.
    pub lo: Vec<i64>,
    /// Inclusive upper corner.
    pub hi: Vec<i64>,
}

impl Mbr {
    /// The MBR of a single point.
    pub fn point(p: &[i64]) -> Self {
        Mbr {
            lo: p.to_vec(),
            hi: p.to_vec(),
        }
    }

    /// The MBR of a non-empty set of points.
    ///
    /// # Panics
    /// Panics on an empty iterator — an empty MBR has no meaning here.
    pub fn of_points<'a, I: IntoIterator<Item = &'a [i64]>>(points: I) -> Self {
        let mut it = points.into_iter();
        let first = it.next().expect("MBR needs at least one point");
        let mut m = Mbr::point(first);
        for p in it {
            m.expand_point(p);
        }
        m
    }

    /// Dimensionality.
    pub fn ndim(&self) -> usize {
        self.lo.len()
    }

    /// Grow to include a point.
    pub fn expand_point(&mut self, p: &[i64]) {
        debug_assert_eq!(p.len(), self.ndim());
        for d in 0..self.lo.len() {
            self.lo[d] = self.lo[d].min(p[d]);
            self.hi[d] = self.hi[d].max(p[d]);
        }
    }

    /// Grow to include another MBR.
    pub fn expand_mbr(&mut self, other: &Mbr) {
        debug_assert_eq!(other.ndim(), self.ndim());
        for d in 0..self.lo.len() {
            self.lo[d] = self.lo[d].min(other.lo[d]);
            self.hi[d] = self.hi[d].max(other.hi[d]);
        }
    }

    /// True when the two rectangles overlap (share at least one point).
    pub fn intersects(&self, other: &Mbr) -> bool {
        self.lo
            .iter()
            .zip(self.hi.iter())
            .zip(other.lo.iter().zip(other.hi.iter()))
            .all(|((&slo, &shi), (&olo, &ohi))| slo <= ohi && olo <= shi)
    }

    /// True when `p` lies inside.
    pub fn contains_point(&self, p: &[i64]) -> bool {
        p.iter()
            .zip(self.lo.iter().zip(self.hi.iter()))
            .all(|(&c, (&l, &h))| c >= l && c <= h)
    }

    /// Volume as a count of integer points (product of extents).
    pub fn volume(&self) -> u128 {
        self.lo
            .iter()
            .zip(self.hi.iter())
            .map(|(&l, &h)| (h - l + 1) as u128)
            .product()
    }

    /// Hyper-surface measure: sum of extents (the margin the R*-tree
    /// literature minimises); used as a packing-quality diagnostic.
    pub fn margin(&self) -> i64 {
        self.lo
            .iter()
            .zip(self.hi.iter())
            .map(|(&l, &h)| h - l)
            .sum()
    }

    /// Chebyshev (L∞) distance from `p` to the nearest point of this MBR
    /// (`0` when `p` lies inside). This is the lower bound a best-first
    /// kNN search orders its frontier by: no point under a subtree can be
    /// closer to `p` than its node MBR.
    pub fn min_chebyshev_dist(&self, p: &[i64]) -> i64 {
        debug_assert_eq!(p.len(), self.ndim());
        p.iter()
            .zip(self.lo.iter().zip(self.hi.iter()))
            .map(|(&c, (&l, &h))| {
                if c < l {
                    l - c
                } else if c > h {
                    c - h
                } else {
                    0
                }
            })
            .max()
            .unwrap_or(0)
    }
}

/// Chebyshev (L∞) distance between two points — the metric every kNN
/// query of the serving layer ranks neighbours by.
pub fn chebyshev(a: &[i64], b: &[i64]) -> i64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b.iter())
        .map(|(&x, &y)| (x - y).abs())
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_mbr() {
        let m = Mbr::point(&[1, 2]);
        assert_eq!(m.lo, vec![1, 2]);
        assert_eq!(m.hi, vec![1, 2]);
        assert_eq!(m.volume(), 1);
        assert_eq!(m.margin(), 0);
        assert!(m.contains_point(&[1, 2]));
        assert!(!m.contains_point(&[1, 3]));
    }

    #[test]
    fn of_points_covers_all() {
        let pts: Vec<Vec<i64>> = vec![vec![0, 5], vec![3, 1], vec![2, 2]];
        let m = Mbr::of_points(pts.iter().map(|p| p.as_slice()));
        assert_eq!(m.lo, vec![0, 1]);
        assert_eq!(m.hi, vec![3, 5]);
        assert_eq!(m.volume(), 20);
        assert_eq!(m.margin(), 3 + 4);
        for p in &pts {
            assert!(m.contains_point(p));
        }
    }

    #[test]
    #[should_panic(expected = "at least one point")]
    fn empty_mbr_panics() {
        let empty: Vec<&[i64]> = vec![];
        Mbr::of_points(empty);
    }

    #[test]
    fn intersection_cases() {
        let a = Mbr {
            lo: vec![0, 0],
            hi: vec![2, 2],
        };
        let b = Mbr {
            lo: vec![2, 2],
            hi: vec![4, 4],
        }; // corner touch counts
        let c = Mbr {
            lo: vec![3, 0],
            hi: vec![4, 1],
        };
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
        // a and c overlap in y ([0,2]∩[0,1]) but not in x ([0,2]∩[3,4]).
        assert!(!a.intersects(&c));
        // b and c overlap in x ([2,4]∩[3,4]) but not in y ([2,4]∩[0,1]).
        assert!(!b.intersects(&c));
    }

    #[test]
    fn min_chebyshev_dist_cases() {
        let m = Mbr {
            lo: vec![2, 2],
            hi: vec![5, 4],
        };
        // Inside and on the boundary: distance zero.
        assert_eq!(m.min_chebyshev_dist(&[3, 3]), 0);
        assert_eq!(m.min_chebyshev_dist(&[2, 4]), 0);
        // Outside along one axis.
        assert_eq!(m.min_chebyshev_dist(&[0, 3]), 2);
        assert_eq!(m.min_chebyshev_dist(&[3, 7]), 3);
        // Outside along both: Chebyshev takes the larger gap.
        assert_eq!(m.min_chebyshev_dist(&[0, 7]), 3);
        // Consistency: the bound never exceeds the distance to any
        // contained point.
        for p in [[2i64, 2], [5, 4], [4, 3]] {
            assert!(m.min_chebyshev_dist(&[-3, 9]) <= chebyshev(&[-3, 9], &p));
        }
    }

    #[test]
    fn chebyshev_distance_cases() {
        assert_eq!(chebyshev(&[0, 0], &[3, -2]), 3);
        assert_eq!(chebyshev(&[1, 1, 1], &[1, 1, 1]), 0);
        assert_eq!(chebyshev(&[], &[]), 0);
    }

    #[test]
    fn expand_operations() {
        let mut m = Mbr::point(&[1, 1]);
        m.expand_point(&[-1, 3]);
        assert_eq!(m.lo, vec![-1, 1]);
        assert_eq!(m.hi, vec![1, 3]);
        m.expand_mbr(&Mbr {
            lo: vec![0, -5],
            hi: vec![9, 0],
        });
        assert_eq!(m.lo, vec![-1, -5]);
        assert_eq!(m.hi, vec![9, 3]);
    }
}
