//! Mapping linear positions to disk pages.

use spectral_lpm::LinearOrder;
use std::collections::BTreeSet;

/// Static description of the page geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageLayout {
    /// Records per page (≥ 1).
    pub records_per_page: usize,
}

impl PageLayout {
    /// Create a layout.
    ///
    /// # Panics
    /// Panics on a zero page size — a configuration bug, not a runtime
    /// condition.
    pub fn new(records_per_page: usize) -> Self {
        assert!(records_per_page >= 1, "page must hold at least one record");
        PageLayout { records_per_page }
    }

    /// Page of a given 1-D position.
    #[inline]
    pub fn page_of_position(&self, position: usize) -> usize {
        position / self.records_per_page
    }

    /// Number of pages needed for `n` records.
    pub fn num_pages(&self, n: usize) -> usize {
        n.div_ceil(self.records_per_page)
    }
}

/// A linear order placed onto pages: point → page in O(1).
///
/// Borrows the order's rank array instead of materialising a derived
/// dense page array — at 10⁶ points the old copy cost 8 MB per mapper and
/// was the storage layer's "second dense rank array" blocking large-grid
/// runs; a page lookup is now one division on the borrowed rank.
#[derive(Debug, Clone)]
pub struct PageMapper<'a> {
    layout: PageLayout,
    /// Borrowed rank array of the order (`rank[v]` = 1-D position of `v`).
    rank: &'a [usize],
    num_pages: usize,
}

impl<'a> PageMapper<'a> {
    /// Place an order onto pages (by reference — no per-vertex copy).
    pub fn new(order: &'a LinearOrder, layout: PageLayout) -> Self {
        Self::from_ranks(order.ranks(), layout)
    }

    /// Place a raw rank array onto pages — the iterator/slice-consuming
    /// form for callers that never build a full [`LinearOrder`].
    pub fn from_ranks(rank: &'a [usize], layout: PageLayout) -> Self {
        PageMapper {
            layout,
            rank,
            num_pages: layout.num_pages(rank.len()),
        }
    }

    /// The layout in use.
    pub fn layout(&self) -> PageLayout {
        self.layout
    }

    /// Total number of pages.
    pub fn num_pages(&self) -> usize {
        self.num_pages
    }

    /// Page holding vertex `v`.
    #[inline]
    pub fn page_of(&self, v: usize) -> usize {
        self.layout.page_of_position(self.rank[v])
    }

    /// 1-D position (rank) of vertex `v`.
    #[inline]
    pub fn position_of(&self, v: usize) -> usize {
        self.rank[v]
    }

    /// The borrowed rank array (`ranks()[v]` = 1-D position of `v`).
    pub fn ranks(&self) -> &[usize] {
        self.rank
    }

    /// The inverse permutation: `result[position] = vertex at that rank`.
    /// This is the write-order view of the layout — a page-file writer
    /// streams record payloads in exactly this sequence.
    pub fn vertices_by_position(&self) -> Vec<usize> {
        let mut vertex_at = vec![usize::MAX; self.rank.len()];
        for (v, &r) in self.rank.iter().enumerate() {
            vertex_at[r] = v;
        }
        vertex_at
    }

    /// Number of records placed (the order's length).
    pub fn num_records(&self) -> usize {
        self.rank.len()
    }

    /// The set of distinct pages a query's vertices touch.
    pub fn pages_touched<I: IntoIterator<Item = usize>>(&self, vertices: I) -> BTreeSet<usize> {
        vertices.into_iter().map(|v| self.page_of(v)).collect()
    }

    /// Number of distinct pages touched (the basic I/O count).
    pub fn page_count<I: IntoIterator<Item = usize>>(&self, vertices: I) -> usize {
        self.pages_touched(vertices).len()
    }

    /// Number of maximal runs of *consecutive* pages among those touched —
    /// the number of sequential page reads.
    pub fn page_runs<I: IntoIterator<Item = usize>>(&self, vertices: I) -> usize {
        let pages = self.pages_touched(vertices);
        let mut runs = 0;
        let mut prev: Option<usize> = None;
        for p in pages {
            if prev != Some(p.wrapping_sub(1)) {
                runs += 1;
            }
            prev = Some(p);
        }
        runs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_basics() {
        let l = PageLayout::new(4);
        assert_eq!(l.page_of_position(0), 0);
        assert_eq!(l.page_of_position(3), 0);
        assert_eq!(l.page_of_position(4), 1);
        assert_eq!(l.num_pages(9), 3);
        assert_eq!(l.num_pages(8), 2);
        assert_eq!(l.num_pages(0), 0);
    }

    #[test]
    #[should_panic(expected = "at least one record")]
    fn zero_page_size_panics() {
        PageLayout::new(0);
    }

    #[test]
    fn mapper_places_by_rank() {
        // Reversed order of 8 vertices, 4 per page: vertex 0 has rank 7 →
        // page 1; vertex 7 has rank 0 → page 0.
        let order = LinearOrder::from_ranks((0..8).rev().collect()).unwrap();
        let m = PageMapper::new(&order, PageLayout::new(4));
        assert_eq!(m.num_pages(), 2);
        assert_eq!(m.page_of(0), 1);
        assert_eq!(m.page_of(7), 0);
    }

    #[test]
    fn pages_touched_and_count() {
        let order = LinearOrder::identity(12);
        let m = PageMapper::new(&order, PageLayout::new(4));
        let pages = m.pages_touched([0, 1, 5, 11]);
        assert_eq!(pages.into_iter().collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(m.page_count([0, 1, 2, 3]), 1);
        assert_eq!(m.page_count(std::iter::empty()), 0);
    }

    #[test]
    fn page_runs_counts_gaps() {
        let order = LinearOrder::identity(20);
        let m = PageMapper::new(&order, PageLayout::new(2));
        // Pages 0,1 contiguous; page 5 separate.
        assert_eq!(m.page_runs([0, 2, 10]), 2);
        // Single run.
        assert_eq!(m.page_runs([0, 1, 2, 3]), 1);
        // Empty query.
        assert_eq!(m.page_runs(std::iter::empty()), 0);
    }

    #[test]
    fn vertices_by_position_inverts_the_rank_array() {
        let order = LinearOrder::from_ranks(vec![2, 0, 3, 1]).unwrap();
        let m = PageMapper::new(&order, PageLayout::new(2));
        assert_eq!(m.ranks(), &[2, 0, 3, 1]);
        let inv = m.vertices_by_position();
        assert_eq!(inv, vec![1, 3, 0, 2]);
        for (v, &r) in m.ranks().iter().enumerate() {
            assert_eq!(inv[r], v);
        }
    }

    #[test]
    fn duplicate_vertices_dedupe() {
        let order = LinearOrder::identity(8);
        let m = PageMapper::new(&order, PageLayout::new(2));
        assert_eq!(m.page_count([0, 0, 1, 1]), 1);
    }
}
