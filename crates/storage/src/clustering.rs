//! The clustering metric of Moon, Jagadish, Faloutsos & Salz (IEEE TKDE
//! 2001) — the paper's reference \[4\].
//!
//! For a query region Q and a linear order π, the **cluster count** is the
//! number of maximal runs of consecutive 1-D positions occupied by Q's
//! points. Each cluster is one sequential read; fewer clusters means fewer
//! seeks. Moon et al. analysed the Hilbert curve through exactly this
//! metric, which makes it the natural bridge between the paper's span
//! metric (Figure 6) and real I/O behaviour.

use spectral_lpm::LinearOrder;

/// Number of maximal runs of consecutive ranks among `vertices` under
/// `order`. Duplicates are ignored. An empty query has 0 clusters.
pub fn cluster_count<I: IntoIterator<Item = usize>>(order: &LinearOrder, vertices: I) -> usize {
    let mut ranks: Vec<usize> = vertices.into_iter().map(|v| order.rank_of(v)).collect();
    ranks.sort_unstable();
    ranks.dedup();
    let mut clusters = 0;
    let mut prev: Option<usize> = None;
    for r in ranks {
        if prev != Some(r.wrapping_sub(1)) {
            clusters += 1;
        }
        prev = Some(r);
    }
    clusters
}

/// Cluster count alongside the span (`max − min` rank) for the same query:
/// span bounds the sequential window, clusters count the seeks within it.
pub fn cluster_and_span<I: IntoIterator<Item = usize>>(
    order: &LinearOrder,
    vertices: I,
) -> (usize, usize) {
    let mut ranks: Vec<usize> = vertices.into_iter().map(|v| order.rank_of(v)).collect();
    ranks.sort_unstable();
    ranks.dedup();
    if ranks.is_empty() {
        return (0, 0);
    }
    let span = ranks.last().unwrap() - ranks.first().unwrap();
    let mut clusters = 1;
    for w in ranks.windows(2) {
        if w[1] != w[0] + 1 {
            clusters += 1;
        }
    }
    (clusters, span)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_is_one_cluster() {
        let o = LinearOrder::identity(10);
        assert_eq!(cluster_count(&o, [3, 4, 5, 6]), 1);
    }

    #[test]
    fn gaps_split_clusters() {
        let o = LinearOrder::identity(10);
        assert_eq!(cluster_count(&o, [0, 2, 4]), 3);
        assert_eq!(cluster_count(&o, [0, 1, 3, 4, 9]), 3);
    }

    #[test]
    fn empty_and_single() {
        let o = LinearOrder::identity(4);
        assert_eq!(cluster_count(&o, []), 0);
        assert_eq!(cluster_count(&o, [2]), 1);
    }

    #[test]
    fn duplicates_ignored() {
        let o = LinearOrder::identity(4);
        assert_eq!(cluster_count(&o, [1, 1, 2, 2]), 1);
    }

    #[test]
    fn respects_order_not_ids() {
        // Vertices 0..4 scrambled so ids 0,1 are far apart in rank.
        let o = LinearOrder::from_ranks(vec![0, 3, 1, 2]).unwrap();
        assert_eq!(cluster_count(&o, [0, 1]), 2); // ranks 0 and 3
        assert_eq!(cluster_count(&o, [0, 2, 3, 1]), 1); // ranks 0..3
    }

    #[test]
    fn cluster_and_span_agree() {
        let o = LinearOrder::identity(10);
        let (c, s) = cluster_and_span(&o, [1, 2, 7]);
        assert_eq!(c, 2);
        assert_eq!(s, 6);
        assert_eq!(cluster_and_span(&o, []), (0, 0));
        let (c1, s1) = cluster_and_span(&o, [5]);
        assert_eq!((c1, s1), (1, 0));
    }

    #[test]
    fn hilbert_clusters_fewer_than_z_order_on_2x2_blocks() {
        // A classic Moon et al. observation: for small square queries the
        // Hilbert curve produces fewer clusters on average than Z-order.
        use slpm_graph::grid::GridSpec;
        use slpm_sfc::{HilbertCurve, PeanoCurve, SpaceFillingCurve};
        let spec = GridSpec::cube(8, 2);
        let to_order = |curve: &dyn SpaceFillingCurve| {
            let mut codes = vec![0u64; 64];
            for (i, c) in spec.iter_points().enumerate() {
                let c32: Vec<u32> = c.iter().map(|&x| x as u32).collect();
                codes[i] = curve.encode(&c32);
            }
            LinearOrder::from_codes(&codes)
        };
        let hil = to_order(&HilbertCurve::from_side(2, 8).unwrap());
        let zor = to_order(&PeanoCurve::from_side(2, 8).unwrap());
        let mut h_total = 0usize;
        let mut z_total = 0usize;
        for x in 0..7 {
            for y in 0..7 {
                let q = [
                    spec.index_of(&[x, y]),
                    spec.index_of(&[x + 1, y]),
                    spec.index_of(&[x, y + 1]),
                    spec.index_of(&[x + 1, y + 1]),
                ];
                h_total += cluster_count(&hil, q);
                z_total += cluster_count(&zor, q);
            }
        }
        assert!(
            h_total < z_total,
            "Hilbert clusters {h_total} not fewer than Z-order {z_total}"
        );
    }
}
