//! A disk-backed page file: the out-of-core storage tier.
//!
//! Everything upstream of this module treats page I/O as accounting; this
//! module makes it physical. A **page file** serializes the payloads a
//! [`crate::store::PageStore`] would materialise in memory, laid out **in
//! linear-order sequence**: page `p` of the file holds exactly the records
//! whose ranks fall in `[p·rpp, (p+1)·rpp)`, so a mapping that clusters a
//! query's records into few, contiguous ranks also clusters its reads into
//! few, contiguous file extents — the paper's physical motivation, made
//! literal. Sequential rank sweeps become sequential disk reads, which is
//! what makes order-driven readahead (see `slpm_serve`'s shard replay)
//! both trivial and profitable.
//!
//! ## File format (version 1)
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"SLPMPAGE"
//! 8       4     format version (u32 LE)
//! 12      4     record_size (u32 LE)
//! 16      4     records_per_page (u32 LE)
//! 20      8     num_records (u64 LE)
//! 28      8     num_pages (u64 LE)
//! 36      8     order digest (u64 LE, FNV-1a over the rank array)
//! 44      12    reserved (zero)
//! 56      8     header checksum (u64 LE, FNV-1a over bytes 0..56)
//! 64      —     page frames, ascending global page id
//! ```
//!
//! Each **page frame** is fixed-size: `records_per_page · record_size`
//! payload bytes followed by an 8-byte FNV-1a checksum of the payload.
//! Fixed frames mean `page → offset` is one multiplication, the total file
//! length is known from the header (so truncation is detected eagerly at
//! open, not lazily at first read), and a contiguous run of pages is one
//! seek plus one sequential read.
//!
//! The **order digest** ties a file to the linear order it was packed
//! under: opening a file with a mapper whose rank array hashes differently
//! fails with [`StorageError::GeometryMismatch`] instead of silently
//! serving records from the wrong slots.
//!
//! Every failure is a typed [`StorageError`] — truncation, corruption and
//! version skew are recoverable conditions for the serving layer (which
//! degrades the affected unit and rebuilds the shard), never panics.
//!
//! ## Relation to [`crate::io::IoModel`]
//!
//! [`crate::io::IoModel`] prices a query analytically: `runs` seeks plus
//! `pages` transfers. This module is the physical counterpart the model
//! predicts: one [`PageFile::read_run`] call is exactly one seek (one
//! `seek` syscall) plus `count` page transfers, and a query replayed as
//! `IoCost { pages, runs }` performs `runs` such calls when readahead
//! covers each monotone run. The measured per-page and per-seek costs of
//! this tier calibrate `slpm_serve::stream::ServiceModel`'s defaults.

// This module is the one place `std::fs` is blessed (the `fs-only-in-
// storage` xtask lint pins the whole tree to that rule by path).
use crate::pages::PageMapper;
use crate::store::record_payload;
use bytes::Bytes;
use std::fmt;
use std::fs::File;
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::Path;

/// Magic bytes opening every page file.
pub const MAGIC: [u8; 8] = *b"SLPMPAGE";
/// Current format version.
pub const FORMAT_VERSION: u32 = 1;
/// Serialized header size in bytes.
pub const HEADER_LEN: usize = 64;
/// Per-frame checksum size in bytes.
pub const FRAME_CHECKSUM_LEN: usize = 8;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over a byte slice — the same hash family the serving layer uses
/// for outcome digests, so checksums stay dependency-free.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// FNV-1a over a rank array (each rank hashed as a little-endian u64):
/// the digest that ties a page file to its linear order.
pub fn order_digest(ranks: &[usize]) -> u64 {
    let mut h = FNV_OFFSET;
    for &r in ranks {
        for b in (r as u64).to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
    }
    h
}

/// Typed failures of the disk tier.
///
/// These are *conditions*, not bugs: the serving layer maps them to
/// degraded coverage and shard rebuilds, so none of them panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// An operating-system I/O failure (open, seek, read, write).
    Io(String),
    /// The file does not start with the page-file magic.
    BadMagic,
    /// The file's format version is not the one this build reads.
    VersionMismatch {
        /// Version found in the header.
        found: u32,
        /// Version this build expects.
        expected: u32,
    },
    /// The file is shorter than its header promises.
    Truncated {
        /// Length the header implies, in bytes.
        expected: u64,
        /// Actual file length, in bytes.
        actual: u64,
    },
    /// A checksum did not verify. `page == usize::MAX` means the header
    /// itself; otherwise the global id of the corrupt page frame.
    ChecksumMismatch {
        /// Global page id of the corrupt frame (`usize::MAX` = header).
        page: usize,
    },
    /// The file's geometry (record size, page size, record count or order
    /// digest) does not match what the caller expects.
    GeometryMismatch {
        /// Which field disagreed, with both values.
        detail: String,
    },
    /// A fault-plan-injected read error (`pagerr:P@N`), surfaced through
    /// the same typed path a real device error would take.
    Injected {
        /// Global page id whose read was failed.
        page: usize,
    },
    /// A read named a page this store slice does not own.
    PageNotOwned {
        /// The unowned global page id.
        page: usize,
    },
    /// A read named a page past the end of the file.
    PageOutOfRange {
        /// The out-of-range global page id.
        page: usize,
        /// Number of pages the file holds.
        num_pages: usize,
    },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(msg) => write!(f, "storage i/o error: {msg}"),
            StorageError::BadMagic => write!(f, "not a page file (bad magic)"),
            StorageError::VersionMismatch { found, expected } => {
                write!(f, "page file version {found}, this build reads {expected}")
            }
            StorageError::Truncated { expected, actual } => {
                write!(
                    f,
                    "page file truncated: {actual} bytes, header promises {expected}"
                )
            }
            StorageError::ChecksumMismatch { page } if *page == usize::MAX => {
                write!(f, "page file header checksum mismatch")
            }
            StorageError::ChecksumMismatch { page } => {
                write!(f, "page {page} checksum mismatch")
            }
            StorageError::GeometryMismatch { detail } => {
                write!(f, "page file geometry mismatch: {detail}")
            }
            StorageError::Injected { page } => {
                write!(f, "injected read error on page {page}")
            }
            StorageError::PageNotOwned { page } => {
                write!(f, "page {page} not owned by this store slice")
            }
            StorageError::PageOutOfRange { page, num_pages } => {
                write!(f, "page {page} out of range ({num_pages} pages)")
            }
        }
    }
}

impl std::error::Error for StorageError {}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e.to_string())
    }
}

/// The parsed, validated header of a page file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageFileHeader {
    /// Format version.
    pub version: u32,
    /// Bytes per record.
    pub record_size: usize,
    /// Records per page.
    pub records_per_page: usize,
    /// Total records packed.
    pub num_records: usize,
    /// Total page frames.
    pub num_pages: usize,
    /// FNV-1a digest of the packing order's rank array.
    pub order_digest: u64,
}

impl PageFileHeader {
    /// Payload bytes per frame (excluding the frame checksum).
    pub fn page_bytes(&self) -> usize {
        self.records_per_page * self.record_size
    }

    /// Total frame size on disk (payload + checksum).
    pub fn frame_len(&self) -> usize {
        self.page_bytes() + FRAME_CHECKSUM_LEN
    }

    /// Total file length the header implies.
    pub fn file_len(&self) -> u64 {
        HEADER_LEN as u64 + self.num_pages as u64 * self.frame_len() as u64
    }

    fn encode(&self) -> [u8; HEADER_LEN] {
        let mut buf = [0u8; HEADER_LEN];
        buf[0..8].copy_from_slice(&MAGIC);
        buf[8..12].copy_from_slice(&self.version.to_le_bytes());
        buf[12..16].copy_from_slice(&(self.record_size as u32).to_le_bytes());
        buf[16..20].copy_from_slice(&(self.records_per_page as u32).to_le_bytes());
        buf[20..28].copy_from_slice(&(self.num_records as u64).to_le_bytes());
        buf[28..36].copy_from_slice(&(self.num_pages as u64).to_le_bytes());
        buf[36..44].copy_from_slice(&self.order_digest.to_le_bytes());
        let sum = fnv1a(&buf[..56]);
        buf[56..64].copy_from_slice(&sum.to_le_bytes());
        buf
    }

    fn decode(buf: &[u8; HEADER_LEN]) -> Result<Self, StorageError> {
        if buf[0..8] != MAGIC {
            return Err(StorageError::BadMagic);
        }
        let sum = u64::from_le_bytes(buf[56..64].try_into().expect("8 bytes"));
        if sum != fnv1a(&buf[..56]) {
            return Err(StorageError::ChecksumMismatch { page: usize::MAX });
        }
        let version = u32::from_le_bytes(buf[8..12].try_into().expect("4 bytes"));
        if version != FORMAT_VERSION {
            return Err(StorageError::VersionMismatch {
                found: version,
                expected: FORMAT_VERSION,
            });
        }
        Ok(PageFileHeader {
            version,
            record_size: u32::from_le_bytes(buf[12..16].try_into().expect("4 bytes")) as usize,
            records_per_page: u32::from_le_bytes(buf[16..20].try_into().expect("4 bytes")) as usize,
            num_records: u64::from_le_bytes(buf[20..28].try_into().expect("8 bytes")) as usize,
            num_pages: u64::from_le_bytes(buf[28..36].try_into().expect("8 bytes")) as usize,
            order_digest: u64::from_le_bytes(buf[36..44].try_into().expect("8 bytes")),
        })
    }
}

/// Write a page file for the records laid out by `mapper`, each record
/// `record_size` bytes, to `path` (overwriting).
///
/// Pages are written in ascending global id — i.e. in **linear-order
/// sequence**: the writer inverts the rank array once and streams record
/// payloads in rank order, so packing is one sequential pass regardless of
/// how scrambled the vertex ids are. Tail slots of the last page are
/// zero-filled, exactly as the in-memory store zero-fills them.
pub fn write_page_file(
    path: &Path,
    mapper: &PageMapper<'_>,
    record_size: usize,
) -> Result<PageFileHeader, StorageError> {
    let header = PageFileHeader {
        version: FORMAT_VERSION,
        record_size,
        records_per_page: mapper.layout().records_per_page,
        num_records: mapper.num_records(),
        num_pages: mapper.num_pages(),
        order_digest: order_digest(mapper.ranks()),
    };
    let vertex_at = mapper.vertices_by_position();
    let rpp = header.records_per_page;
    let mut out = BufWriter::new(File::create(path)?);
    out.write_all(&header.encode())?;
    let mut frame = vec![0u8; header.page_bytes()];
    for page in 0..header.num_pages {
        frame.fill(0);
        for slot in 0..rpp {
            let position = page * rpp + slot;
            if position < header.num_records {
                let v = vertex_at[position];
                frame[slot * record_size..(slot + 1) * record_size]
                    .copy_from_slice(&record_payload(v, record_size));
            }
        }
        out.write_all(&frame)?;
        out.write_all(&fnv1a(&frame).to_le_bytes())?;
    }
    out.flush()?;
    Ok(header)
}

/// An open, validated page file serving checksummed page reads.
///
/// Opening validates the magic, version, header checksum and **total file
/// length** (so a truncated file fails at open, not at the first unlucky
/// read). Each read seeks to the page's fixed offset, reads one frame and
/// verifies its checksum; [`PageFile::read_run`] reads a contiguous run of
/// frames with a single seek — the readahead primitive.
///
/// The handle is single-threaded by design (`&mut self` reads): each shard
/// slice owns its own `PageFile`, mirroring one file descriptor per shard.
#[derive(Debug)]
pub struct PageFile {
    file: File,
    header: PageFileHeader,
}

impl PageFile {
    /// Open and validate a page file.
    pub fn open(path: &Path) -> Result<Self, StorageError> {
        let mut file = File::open(path)?;
        let actual = file.metadata()?.len();
        if (actual as usize) < HEADER_LEN {
            return Err(StorageError::Truncated {
                expected: HEADER_LEN as u64,
                actual,
            });
        }
        let mut buf = [0u8; HEADER_LEN];
        file.read_exact(&mut buf)?;
        let header = PageFileHeader::decode(&buf)?;
        if actual != header.file_len() {
            return Err(StorageError::Truncated {
                expected: header.file_len(),
                actual,
            });
        }
        Ok(PageFile { file, header })
    }

    /// The validated header.
    pub fn header(&self) -> &PageFileHeader {
        &self.header
    }

    /// Check this file's geometry against a mapper + record size; the
    /// order digest must match the mapper's rank array bitwise.
    pub fn check_geometry(
        &self,
        mapper: &PageMapper<'_>,
        record_size: usize,
    ) -> Result<(), StorageError> {
        let h = &self.header;
        let mismatch = |detail: String| Err(StorageError::GeometryMismatch { detail });
        if h.record_size != record_size {
            return mismatch(format!(
                "record_size {} in file, {record_size} expected",
                h.record_size
            ));
        }
        let rpp = mapper.layout().records_per_page;
        if h.records_per_page != rpp {
            return mismatch(format!(
                "records_per_page {} in file, {rpp} expected",
                h.records_per_page
            ));
        }
        if h.num_records != mapper.num_records() {
            return mismatch(format!(
                "num_records {} in file, {} expected",
                h.num_records,
                mapper.num_records()
            ));
        }
        let want = order_digest(mapper.ranks());
        if h.order_digest != want {
            return mismatch(format!(
                "order digest {:#018x} in file, {want:#018x} for this order",
                h.order_digest
            ));
        }
        Ok(())
    }

    /// Read one page frame by global id, verifying its checksum.
    pub fn read_page(&mut self, page: usize) -> Result<Bytes, StorageError> {
        let mut run = self.read_run(page, 1)?;
        Ok(run.pop().expect("read_run(_, 1) returns one page"))
    }

    /// Read `count` contiguous page frames starting at global id `start`
    /// with a **single seek** — one call is one physical run: the I/O the
    /// cost model prices as `1 seek + count transfers`.
    pub fn read_run(&mut self, start: usize, count: usize) -> Result<Vec<Bytes>, StorageError> {
        if count == 0 {
            return Ok(Vec::new());
        }
        let end = start + count;
        if end > self.header.num_pages {
            return Err(StorageError::PageOutOfRange {
                page: end - 1,
                num_pages: self.header.num_pages,
            });
        }
        let frame_len = self.header.frame_len();
        let offset = HEADER_LEN as u64 + (start as u64) * frame_len as u64;
        self.file.seek(SeekFrom::Start(offset))?;
        let mut buf = vec![0u8; frame_len * count];
        self.file.read_exact(&mut buf)?;
        let page_bytes = self.header.page_bytes();
        let mut out = Vec::with_capacity(count);
        for i in 0..count {
            let frame = &buf[i * frame_len..(i + 1) * frame_len];
            let payload = &frame[..page_bytes];
            let sum = u64::from_le_bytes(frame[page_bytes..].try_into().expect("8 bytes"));
            if sum != fnv1a(payload) {
                return Err(StorageError::ChecksumMismatch { page: start + i });
            }
            out.push(Bytes::from(payload.to_vec()));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pages::PageLayout;
    use spectral_lpm::LinearOrder;
    use std::fs;
    use std::path::PathBuf;

    /// A self-cleaning temp path (no tempfile crate in the offline image).
    struct TempFile(PathBuf);

    impl TempFile {
        fn new(tag: &str) -> Self {
            let path = std::env::temp_dir()
                .join(format!("slpm-diskfile-{}-{tag}.pages", std::process::id()));
            TempFile(path)
        }
    }

    impl Drop for TempFile {
        fn drop(&mut self) {
            let _ = fs::remove_file(&self.0);
        }
    }

    #[test]
    fn write_then_open_roundtrips_header_and_pages() {
        let order = LinearOrder::from_ranks((0..10).rev().collect()).unwrap();
        let mapper = PageMapper::new(&order, PageLayout::new(4));
        let tmp = TempFile::new("roundtrip");
        let written = write_page_file(&tmp.0, &mapper, 8).unwrap();
        assert_eq!(written.num_pages, 3);
        assert_eq!(written.num_records, 10);
        let mut file = PageFile::open(&tmp.0).unwrap();
        assert_eq!(*file.header(), written);
        file.check_geometry(&mapper, 8).unwrap();
        // Every record's bytes sit at (rank / 4, rank % 4) and match the
        // deterministic payload function.
        for v in 0..10 {
            let rank = order.rank_of(v);
            let page = file.read_page(rank / 4).unwrap();
            let slot = rank % 4;
            assert_eq!(&page[slot * 8..(slot + 1) * 8], &record_payload(v, 8)[..]);
        }
        // Tail slots of the last page are zero-filled.
        let last = file.read_page(2).unwrap();
        assert!(last[2 * 8..].iter().all(|&b| b == 0));
    }

    #[test]
    fn read_run_matches_single_reads() {
        let order = LinearOrder::identity(32);
        let mapper = PageMapper::new(&order, PageLayout::new(4));
        let tmp = TempFile::new("run");
        write_page_file(&tmp.0, &mapper, 16).unwrap();
        let mut file = PageFile::open(&tmp.0).unwrap();
        let run = file.read_run(2, 4).unwrap();
        assert_eq!(run.len(), 4);
        for (i, bytes) in run.iter().enumerate() {
            assert_eq!(&bytes[..], &file.read_page(2 + i).unwrap()[..]);
        }
        assert!(file.read_run(5, 0).unwrap().is_empty());
        assert_eq!(
            file.read_run(6, 3).unwrap_err(),
            StorageError::PageOutOfRange {
                page: 8,
                num_pages: 8
            }
        );
    }

    #[test]
    fn truncated_file_fails_at_open_with_a_typed_error() {
        let order = LinearOrder::identity(16);
        let mapper = PageMapper::new(&order, PageLayout::new(4));
        let tmp = TempFile::new("truncate");
        write_page_file(&tmp.0, &mapper, 8).unwrap();
        let full = fs::read(&tmp.0).unwrap();
        fs::write(&tmp.0, &full[..full.len() - 5]).unwrap();
        match PageFile::open(&tmp.0) {
            Err(StorageError::Truncated { expected, actual }) => {
                assert_eq!(expected, full.len() as u64);
                assert_eq!(actual, full.len() as u64 - 5);
            }
            other => panic!("expected Truncated, got {other:?}"),
        }
        // Shorter than even a header is also Truncated, not a panic.
        fs::write(&tmp.0, &full[..10]).unwrap();
        assert!(matches!(
            PageFile::open(&tmp.0),
            Err(StorageError::Truncated { .. })
        ));
    }

    #[test]
    fn bit_flips_are_caught_by_checksums() {
        let order = LinearOrder::identity(16);
        let mapper = PageMapper::new(&order, PageLayout::new(4));
        let tmp = TempFile::new("bitflip");
        write_page_file(&tmp.0, &mapper, 8).unwrap();
        let pristine = fs::read(&tmp.0).unwrap();
        // Flip one payload bit in page 1: only that page's read fails.
        let mut bytes = pristine.clone();
        let frame_len = 4 * 8 + FRAME_CHECKSUM_LEN;
        bytes[HEADER_LEN + frame_len + 3] ^= 0x40;
        fs::write(&tmp.0, &bytes).unwrap();
        let mut file = PageFile::open(&tmp.0).unwrap();
        assert!(file.read_page(0).is_ok());
        assert_eq!(
            file.read_page(1).unwrap_err(),
            StorageError::ChecksumMismatch { page: 1 }
        );
        // Flip a header bit: open itself fails.
        let mut bytes = pristine.clone();
        bytes[20] ^= 0x01;
        fs::write(&tmp.0, &bytes).unwrap();
        assert_eq!(
            PageFile::open(&tmp.0).unwrap_err(),
            StorageError::ChecksumMismatch { page: usize::MAX }
        );
        // Wrong magic is its own error.
        let mut bytes = pristine;
        bytes[0] = b'X';
        fs::write(&tmp.0, &bytes).unwrap();
        assert_eq!(PageFile::open(&tmp.0).unwrap_err(), StorageError::BadMagic);
    }

    #[test]
    fn version_skew_and_geometry_mismatches_are_typed() {
        let order = LinearOrder::identity(16);
        let mapper = PageMapper::new(&order, PageLayout::new(4));
        let tmp = TempFile::new("geometry");
        write_page_file(&tmp.0, &mapper, 8).unwrap();
        // Bump the version and re-checksum the header: VersionMismatch.
        let mut bytes = fs::read(&tmp.0).unwrap();
        bytes[8..12].copy_from_slice(&2u32.to_le_bytes());
        let sum = fnv1a(&bytes[..56]);
        bytes[56..64].copy_from_slice(&sum.to_le_bytes());
        fs::write(&tmp.0, &bytes).unwrap();
        assert_eq!(
            PageFile::open(&tmp.0).unwrap_err(),
            StorageError::VersionMismatch {
                found: 2,
                expected: FORMAT_VERSION
            }
        );
        // Geometry checks: wrong record size, wrong page size, wrong order.
        write_page_file(&tmp.0, &mapper, 8).unwrap();
        let file = PageFile::open(&tmp.0).unwrap();
        assert!(matches!(
            file.check_geometry(&mapper, 16),
            Err(StorageError::GeometryMismatch { .. })
        ));
        let coarse = PageMapper::new(&order, PageLayout::new(8));
        assert!(matches!(
            file.check_geometry(&coarse, 8),
            Err(StorageError::GeometryMismatch { .. })
        ));
        let other = LinearOrder::from_ranks((0..16).rev().collect()).unwrap();
        let permuted = PageMapper::new(&other, PageLayout::new(4));
        assert!(matches!(
            file.check_geometry(&permuted, 8),
            Err(StorageError::GeometryMismatch { .. })
        ));
    }

    #[test]
    fn order_digest_distinguishes_orders() {
        let a: Vec<usize> = (0..64).collect();
        let b: Vec<usize> = (0..64).rev().collect();
        assert_ne!(order_digest(&a), order_digest(&b));
        assert_eq!(order_digest(&a), order_digest(&(0..64).collect::<Vec<_>>()));
    }

    /// Calibration harness for `slpm_serve::stream::ServiceModel` — run
    /// with `cargo test -p slpm_storage --release -- --ignored
    /// calibrate_disk_tier --nocapture` to re-measure this tier. It times
    /// the two primitives the service model charges for: a scattered
    /// `read_page` (one seek + one transfer) and a long `read_run` (one
    /// seek amortised over many transfers), then solves for per-page and
    /// per-seek microseconds. Not a unit test: the numbers are hardware-
    /// dependent and exist to anchor the simulated-clock defaults.
    #[test]
    #[ignore = "measurement harness, not an invariant"]
    fn calibrate_disk_tier() {
        use std::time::Instant;
        // 4096 pages × (64 × 64 B + checksum) ≈ 16 MiB — big enough to
        // amortise fixed costs, small enough for any CI runner.
        let records = 262_144;
        let rpp = 64;
        let order = LinearOrder::identity(records);
        let mapper = PageMapper::new(&order, PageLayout::new(rpp));
        let tmp = TempFile::new("calibrate");
        let header = write_page_file(&tmp.0, &mapper, 64).unwrap();
        let pages = header.num_pages;
        let mut file = PageFile::open(&tmp.0).unwrap();
        // Warm the page cache so both passes measure the software path
        // plus cached I/O, not first-touch disk latency.
        file.read_run(0, pages).unwrap();
        // Sequential pass: long runs, one seek per 256 pages.
        let t = Instant::now();
        for start in (0..pages).step_by(256) {
            file.read_run(start, 256.min(pages - start)).unwrap();
        }
        let seq_us = t.elapsed().as_secs_f64() * 1e6;
        // Scattered pass: a coprime stride visits every page once, one
        // seek per page.
        let t = Instant::now();
        for i in 0..pages {
            file.read_page((i * 2049) % pages).unwrap();
        }
        let scat_us = t.elapsed().as_secs_f64() * 1e6;
        let per_page = seq_us / pages as f64;
        let per_seek = (scat_us - seq_us) / pages as f64;
        println!(
            "calibrate_disk_tier: {pages} pages, sequential {seq_us:.0}µs, \
             scattered {scat_us:.0}µs → per_page ≈ {per_page:.3}µs, \
             per_seek ≈ {per_seek:.3}µs"
        );
    }

    #[test]
    fn errors_display_usefully() {
        let cases: Vec<(StorageError, &str)> = vec![
            (StorageError::BadMagic, "magic"),
            (
                StorageError::VersionMismatch {
                    found: 9,
                    expected: 1,
                },
                "version 9",
            ),
            (
                StorageError::Truncated {
                    expected: 100,
                    actual: 64,
                },
                "truncated",
            ),
            (StorageError::ChecksumMismatch { page: 7 }, "page 7"),
            (
                StorageError::ChecksumMismatch { page: usize::MAX },
                "header",
            ),
            (
                StorageError::GeometryMismatch {
                    detail: "record_size".into(),
                },
                "record_size",
            ),
            (StorageError::Injected { page: 3 }, "injected"),
            (StorageError::PageNotOwned { page: 5 }, "not owned"),
            (
                StorageError::PageOutOfRange {
                    page: 9,
                    num_pages: 8,
                },
                "out of range",
            ),
            (StorageError::Io("boom".into()), "boom"),
        ];
        for (err, needle) in cases {
            let msg = err.to_string();
            assert!(msg.contains(needle), "{msg:?} missing {needle:?}");
        }
    }
}
