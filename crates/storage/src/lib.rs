//! Page-based storage simulator for locality-preserving mappings.
//!
//! The paper's motivation (Section 1) is physical: place multi-dimensional
//! data on a one-dimensional medium — disk pages — so that spatially close
//! records share pages and queries touch few, mostly-contiguous pages.
//! This crate makes that motivation measurable:
//!
//! * [`pages`] — [`PageLayout`]/[`PageMapper`]: a linear order + page size
//!   give every point a page; queries are charged by pages touched.
//! * [`clustering`] — the **cluster count** of Moon, Jagadish, Faloutsos &
//!   Salz (the paper's reference \[4\]): the number of maximal runs of
//!   consecutive 1-D positions inside a query region, i.e. the number of
//!   sequential reads needed.
//! * [`io`] — a seek/transfer cost model turning pages + clusters into an
//!   I/O time estimate.
//! * [`decluster`] — round-robin declustering of pages over M parallel
//!   disks with per-query parallel response time.
//! * [`diskfile`] — the out-of-core tier: a checksummed page-file format
//!   laid out in linear-order sequence, with typed [`StorageError`]s and
//!   single-seek run reads (the readahead primitive). [`store::PageStore`]
//!   serves either backing — memory and disk are bitwise interchangeable.
//!
//! All structures operate on [`spectral_lpm::LinearOrder`], so every
//! mapping in the reproduction (spectral or fractal) can be evaluated
//! identically.
//!
//! ```
//! use slpm_storage::{cluster_count, IoModel, PageLayout, PageMapper};
//! use spectral_lpm::LinearOrder;
//!
//! let order = LinearOrder::identity(16);
//! let pages = PageMapper::new(&order, PageLayout::new(4));
//! let io = IoModel::default().query_cost(&pages, [0, 1, 2, 3]);
//! assert_eq!(io.pages, 1);                       // one page, one seek
//! assert_eq!(cluster_count(&order, [5, 6, 7]), 1); // contiguous ranks
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod buffer;
pub mod clustering;
pub mod decluster;
pub mod diskfile;
pub mod io;
pub mod mbr;
pub mod pages;
pub mod rtree;
pub mod store;

pub use buffer::{BufferPool, BufferStats};
pub use clustering::cluster_count;
pub use decluster::{Declustering, RoundRobin};
pub use diskfile::{write_page_file, PageFile, PageFileHeader, StorageError};
pub use io::{IoCost, IoModel};
pub use mbr::{chebyshev, Mbr};
pub use pages::{PageLayout, PageMapper};
pub use rtree::{PackedRTree, QueryCost};
pub use store::PageStore;
