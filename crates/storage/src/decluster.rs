//! Declustering: spreading pages over M parallel disks.
//!
//! The paper lists declustering among the applications of locality-
//! preserving mappings: assign nearby pages to *different* disks so a range
//! query's pages can be fetched in parallel. With a good 1-D order, a
//! query's pages are consecutive, and round-robin placement then achieves
//! near-perfect balance — the response time is `ceil(pages / M)` page
//! times. A poor order scatters a query's pages, breaking the balance.

use crate::pages::PageMapper;
use serde::Serialize;

/// A page → disk placement policy.
pub trait Declustering {
    /// Number of disks.
    fn num_disks(&self) -> usize;

    /// Disk of a page.
    fn disk_of(&self, page: usize) -> usize;

    /// Per-disk page counts for one query, given the pages it touches.
    fn load_profile<I: IntoIterator<Item = usize>>(&self, pages: I) -> Vec<usize> {
        let mut load = vec![0usize; self.num_disks()];
        for p in pages {
            load[self.disk_of(p)] += 1;
        }
        load
    }

    /// Parallel response time for a query: the maximum per-disk load (in
    /// page-read units).
    fn response_time<I: IntoIterator<Item = usize>>(&self, pages: I) -> usize {
        self.load_profile(pages).into_iter().max().unwrap_or(0)
    }
}

/// Round-robin declustering: page `p` lives on disk `p mod M`.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct RoundRobin {
    /// Number of disks (≥ 1).
    pub disks: usize,
}

impl RoundRobin {
    /// Create a round-robin placement over `disks` disks.
    ///
    /// # Panics
    /// Panics when `disks == 0`.
    pub fn new(disks: usize) -> Self {
        assert!(disks >= 1, "declustering needs at least one disk");
        RoundRobin { disks }
    }
}

impl Declustering for RoundRobin {
    fn num_disks(&self) -> usize {
        self.disks
    }

    fn disk_of(&self, page: usize) -> usize {
        page % self.disks
    }
}

/// Response time of a vertex query under mapper + declustering: fetch every
/// touched page, in parallel across disks.
pub fn query_response_time<D: Declustering, I: IntoIterator<Item = usize>>(
    mapper: &PageMapper,
    decl: &D,
    vertices: I,
) -> usize {
    decl.response_time(mapper.pages_touched(vertices))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pages::PageLayout;
    use spectral_lpm::LinearOrder;

    #[test]
    fn round_robin_assigns_cyclically() {
        let rr = RoundRobin::new(3);
        assert_eq!(rr.disk_of(0), 0);
        assert_eq!(rr.disk_of(4), 1);
        assert_eq!(rr.num_disks(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one disk")]
    fn zero_disks_panics() {
        RoundRobin::new(0);
    }

    #[test]
    fn consecutive_pages_balance_perfectly() {
        let rr = RoundRobin::new(4);
        // 8 consecutive pages over 4 disks: 2 each → response time 2.
        assert_eq!(rr.response_time(0..8), 2);
        let profile = rr.load_profile(0..8);
        assert_eq!(profile, vec![2, 2, 2, 2]);
    }

    #[test]
    fn aliased_pages_collide() {
        let rr = RoundRobin::new(4);
        // Pages 0, 4, 8: all on disk 0 → response time 3.
        assert_eq!(rr.response_time([0, 4, 8]), 3);
    }

    #[test]
    fn empty_query_zero_response() {
        let rr = RoundRobin::new(2);
        assert_eq!(rr.response_time(std::iter::empty()), 0);
    }

    #[test]
    fn good_order_beats_bad_order_via_declustering() {
        // Identity order: a window of 8 vertices occupies 4 consecutive
        // pages → balanced. A stride-4 order: the same vertices alias onto
        // the same disk.
        let layout = PageLayout::new(2);
        let good_order = LinearOrder::identity(16);
        let good = PageMapper::new(&good_order, layout);
        // Order sending vertex v to rank (v * 4) % 16 + v/4 — a scatter.
        let ranks: Vec<usize> = (0..16).map(|v| (v * 4) % 16 + v / 4).collect();
        let bad_order = LinearOrder::from_ranks(ranks).unwrap();
        let bad = PageMapper::new(&bad_order, layout);
        let rr = RoundRobin::new(4);
        let q: Vec<usize> = (0..8).collect();
        let good_rt = query_response_time(&good, &rr, q.iter().copied());
        let bad_rt = query_response_time(&bad, &rr, q.iter().copied());
        assert!(
            good_rt <= bad_rt,
            "good {good_rt} should not exceed bad {bad_rt}"
        );
    }
}
