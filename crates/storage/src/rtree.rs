//! A packed (bulk-loaded) R-tree over a linear order.
//!
//! The paper lists *R-tree packing* among the applications of locality-
//! preserving mappings, after Kamel & Faloutsos' Hilbert-packed R-trees:
//! sort the data by a 1-D order, fill leaves with consecutive runs, and
//! build the index bottom-up. The better the order preserves spatial
//! locality, the tighter the leaf MBRs and the fewer nodes a range query
//! must visit. This module implements exactly that pipeline for *any*
//! [`LinearOrder`], so the spectral order can be compared against the
//! fractals on the application the paper only gestures at.

use crate::mbr::{chebyshev, Mbr};
use serde::Serialize;
use spectral_lpm::LinearOrder;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One node of the packed R-tree.
#[derive(Debug, Clone, Serialize)]
struct Node {
    mbr: Mbr,
    /// Children: either node indices (internal) or point ids (leaf).
    children: Vec<usize>,
    is_leaf: bool,
}

/// A packed R-tree: bulk-loaded, never updated (the classic static index).
///
/// Borrows the indexed point set rather than copying it — the duplicate
/// `Vec<Vec<i64>>` was, with the page mapper's dense page array, the
/// "materialised twice" cost that blocked 10⁶-point runs (a 2-D point set
/// of that size is ~40 MB of small heap allocations per copy).
#[derive(Debug, Clone, Serialize)]
pub struct PackedRTree<'a> {
    nodes: Vec<Node>,
    root: usize,
    height: usize,
    fanout: usize,
    /// The indexed points, borrowed (id = position in this slice).
    points: &'a [Vec<i64>],
}

/// Access counts of one range query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct QueryCost {
    /// Internal + leaf nodes whose MBR intersected the query.
    pub nodes_visited: usize,
    /// Leaf nodes visited (page reads in the classic model).
    pub leaves_visited: usize,
    /// Matching points returned.
    pub results: usize,
}

impl QueryCost {
    /// The all-zero cost, the identity of [`QueryCost::absorb`].
    pub const ZERO: QueryCost = QueryCost {
        nodes_visited: 0,
        leaves_visited: 0,
        results: 0,
    };

    /// Saturating accumulate: add another probe's counters without ever
    /// overflow-panicking in debug builds. Iterative planners (the
    /// expanding-ball kNN probe re-pays the tree on every doubling round)
    /// can rack up counters far past any single traversal on adversarial
    /// workloads; pinning the sum at `usize::MAX` keeps the accounting a
    /// diagnostic, never a crash.
    pub fn absorb(&mut self, other: &QueryCost) {
        self.nodes_visited = self.nodes_visited.saturating_add(other.nodes_visited);
        self.leaves_visited = self.leaves_visited.saturating_add(other.leaves_visited);
        self.results = self.results.saturating_add(other.results);
    }
}

impl<'a> PackedRTree<'a> {
    /// Bulk-load a tree over `points`, packing leaves with `fanout`
    /// consecutive points of `order` (and internal levels with `fanout`
    /// consecutive children). The point set is borrowed, not copied; the
    /// order is consumed through its position lookups only.
    ///
    /// # Panics
    /// Panics when `fanout < 2`, `points` is empty, or `order.len()`
    /// differs from `points.len()` — all caller bugs.
    pub fn pack(points: &'a [Vec<i64>], order: &LinearOrder, fanout: usize) -> Self {
        assert!(fanout >= 2, "R-tree fanout must be at least 2");
        assert!(!points.is_empty(), "cannot pack an empty point set");
        assert_eq!(order.len(), points.len(), "order/point-set mismatch");

        let mut nodes: Vec<Node> = Vec::new();
        // Leaf level: consecutive runs of the order.
        let mut level: Vec<usize> = Vec::new();
        let mut position = 0usize;
        while position < points.len() {
            let end = (position + fanout).min(points.len());
            let ids: Vec<usize> = (position..end).map(|p| order.vertex_at(p)).collect();
            let mbr = Mbr::of_points(ids.iter().map(|&i| points[i].as_slice()));
            nodes.push(Node {
                mbr,
                children: ids,
                is_leaf: true,
            });
            level.push(nodes.len() - 1);
            position = end;
        }
        let mut height = 1usize;
        // Internal levels.
        while level.len() > 1 {
            let mut next: Vec<usize> = Vec::new();
            let mut i = 0usize;
            while i < level.len() {
                let end = (i + fanout).min(level.len());
                let children: Vec<usize> = level[i..end].to_vec();
                let mut mbr = nodes[children[0]].mbr.clone();
                for &c in &children[1..] {
                    mbr.expand_mbr(&nodes[c].mbr.clone());
                }
                nodes.push(Node {
                    mbr,
                    children,
                    is_leaf: false,
                });
                next.push(nodes.len() - 1);
                i = end;
            }
            level = next;
            height += 1;
        }

        PackedRTree {
            root: level[0],
            nodes,
            height,
            fanout,
            points,
        }
    }

    /// Number of nodes (all levels).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of leaf nodes.
    pub fn num_leaves(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_leaf).count()
    }

    /// Tree height (leaf level = 1).
    pub fn height(&self) -> usize {
        self.height
    }

    /// Leaf fanout used at pack time.
    pub fn fanout(&self) -> usize {
        self.fanout
    }

    /// Sum of leaf MBR volumes — the classic packing-quality metric
    /// (smaller = tighter leaves = fewer false node visits).
    pub fn total_leaf_volume(&self) -> u128 {
        self.nodes
            .iter()
            .filter(|n| n.is_leaf)
            .map(|n| n.mbr.volume())
            .sum()
    }

    /// Sum of leaf MBR margins (the R*-tree quality proxy).
    pub fn total_leaf_margin(&self) -> i64 {
        self.nodes
            .iter()
            .filter(|n| n.is_leaf)
            .map(|n| n.mbr.margin())
            .sum()
    }

    /// Answer a range query, counting node accesses.
    ///
    /// Results are sorted by **point id** (ascending), which is generally
    /// *not* the packed linear order — downstream page reads derived from
    /// this list can jump back and forth across the order. Use
    /// [`PackedRTree::range_query_ordered`] when the consumer streams the
    /// results to storage.
    pub fn range_query(&self, query: &Mbr) -> (Vec<usize>, QueryCost) {
        let (mut results, cost) = self.range_query_ordered(query);
        results.sort_unstable();
        (results, cost)
    }

    /// Answer a range query returning matches in **packed (linear-order)
    /// sequence**: leaves hold consecutive runs of the order and are
    /// visited left-to-right, so result ranks — and therefore the page
    /// ids any [`crate::PageMapper`] over the same order derives from
    /// them — are monotonically non-decreasing. That turns the query's
    /// page reads into a forward-only sweep (sequential I/O), which is
    /// what the serving layer feeds to its shards.
    ///
    /// Node-access counts are identical to [`PackedRTree::range_query`]
    /// (same nodes, different visit order).
    pub fn range_query_ordered(&self, query: &Mbr) -> (Vec<usize>, QueryCost) {
        let mut results = Vec::new();
        let mut cost = QueryCost {
            nodes_visited: 0,
            leaves_visited: 0,
            results: 0,
        };
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            let node = &self.nodes[id];
            if !node.mbr.intersects(query) {
                continue;
            }
            cost.nodes_visited += 1;
            if node.is_leaf {
                cost.leaves_visited += 1;
                for &pid in &node.children {
                    if query.contains_point(&self.points[pid]) {
                        results.push(pid);
                    }
                }
            } else {
                // Children are packed left-to-right over the order; push
                // them reversed so the leftmost pops first and leaves are
                // visited in packed order.
                stack.extend(node.children.iter().rev().copied());
            }
        }
        cost.results = results.len();
        (results, cost)
    }

    /// Exact k-nearest-neighbour search under the Chebyshev (L∞) metric,
    /// as a **best-first branch-and-bound** over the packed tree (the
    /// classic Hjaltason–Samet incremental search, specialised to a fixed
    /// `k`):
    ///
    /// * the frontier is a binary min-heap of tree nodes keyed by
    ///   `(`[`Mbr::min_chebyshev_dist`]` to the centre, node id)` — the
    ///   node id tie-break makes the pop order, and therefore the
    ///   node-access counters, a pure function of the tree and query;
    /// * the current `k` best candidates live in a max-heap keyed by
    ///   `(distance, point id)`; a node is descended only while its
    ///   min-distance can still beat the worst candidate (strictly
    ///   greater prunes — an equal bound may still hide an equal-distance
    ///   point with a smaller id);
    /// * once the closest frontier node is strictly farther than the
    ///   worst of `k` candidates the search stops: every unvisited point
    ///   is at least that far away.
    ///
    /// Results come back sorted ascending by `(distance, id)` — bitwise
    /// identical to brute force (score every point, sort, truncate) and to
    /// the expanding-ball probe the serving engine used before, while
    /// visiting each node **at most once** instead of re-paying the root
    /// path on every doubling round.
    ///
    /// `k` is clamped to the point count; `k == 0` returns nothing and
    /// touches nothing.
    pub fn knn_best_first(&self, center: &[i64], k: usize) -> (Vec<usize>, QueryCost) {
        let mut cost = QueryCost::ZERO;
        let k = k.min(self.points.len());
        if k == 0 {
            return (Vec::new(), cost);
        }
        // Min-heap frontier of (lower bound, node id).
        let mut frontier: BinaryHeap<Reverse<(i64, usize)>> = BinaryHeap::new();
        frontier.push(Reverse((
            self.nodes[self.root].mbr.min_chebyshev_dist(center),
            self.root,
        )));
        // Max-heap of the best k candidates seen, keyed (distance, id).
        let mut best: BinaryHeap<(i64, usize)> = BinaryHeap::with_capacity(k + 1);
        while let Some(Reverse((bound, id))) = frontier.pop() {
            // The frontier pops in non-decreasing bound order, so the
            // first unbeatable bound ends the whole search.
            if best.len() == k && bound > best.peek().expect("k > 0 candidates").0 {
                break;
            }
            let node = &self.nodes[id];
            cost.nodes_visited += 1;
            if node.is_leaf {
                cost.leaves_visited += 1;
                for &pid in &node.children {
                    let entry = (chebyshev(center, &self.points[pid]), pid);
                    if best.len() < k {
                        best.push(entry);
                    } else if entry < *best.peek().expect("k > 0 candidates") {
                        best.pop();
                        best.push(entry);
                    }
                }
            } else {
                for &child in &node.children {
                    let child_bound = self.nodes[child].mbr.min_chebyshev_dist(center);
                    // Prune only on a strictly worse bound: an equal one
                    // may hold an equal-distance point with a smaller id.
                    if best.len() < k || child_bound <= best.peek().expect("k > 0 candidates").0 {
                        frontier.push(Reverse((child_bound, child)));
                    }
                }
            }
        }
        let mut scored = best.into_vec();
        scored.sort_unstable();
        let results: Vec<usize> = scored.into_iter().map(|(_, id)| id).collect();
        cost.results = results.len();
        (results, cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 4×4 grid of points, id = row-major index.
    fn grid_points(side: i64) -> Vec<Vec<i64>> {
        let mut pts = Vec::new();
        for x in 0..side {
            for y in 0..side {
                pts.push(vec![x, y]);
            }
        }
        pts
    }

    #[test]
    fn pack_shapes() {
        let pts = grid_points(4);
        let t = PackedRTree::pack(&pts, &LinearOrder::identity(16), 4);
        assert_eq!(t.num_leaves(), 4);
        assert_eq!(t.height(), 2);
        assert_eq!(t.num_nodes(), 5);
        assert_eq!(t.fanout(), 4);
    }

    #[test]
    fn uneven_last_leaf() {
        let pts = grid_points(3); // 9 points, fanout 4 → leaves 4+4+1
        let t = PackedRTree::pack(&pts, &LinearOrder::identity(9), 4);
        assert_eq!(t.num_leaves(), 3);
    }

    #[test]
    fn range_query_returns_exact_results() {
        let pts = grid_points(4);
        let t = PackedRTree::pack(&pts, &LinearOrder::identity(16), 4);
        let q = Mbr {
            lo: vec![1, 1],
            hi: vec![2, 2],
        };
        let (res, cost) = t.range_query(&q);
        assert_eq!(cost.results, 4);
        assert_eq!(res.len(), 4);
        for &pid in &res {
            assert!(q.contains_point(&pts[pid]));
        }
        // And nothing outside was returned: brute force check.
        let brute: Vec<usize> = (0..16).filter(|&i| q.contains_point(&pts[i])).collect();
        assert_eq!(res, brute);
    }

    #[test]
    fn whole_space_query_visits_everything() {
        let pts = grid_points(4);
        let t = PackedRTree::pack(&pts, &LinearOrder::identity(16), 4);
        let q = Mbr {
            lo: vec![0, 0],
            hi: vec![3, 3],
        };
        let (res, cost) = t.range_query(&q);
        assert_eq!(res.len(), 16);
        assert_eq!(cost.nodes_visited, t.num_nodes());
        assert_eq!(cost.leaves_visited, t.num_leaves());
    }

    #[test]
    fn empty_region_query_touches_root_only() {
        let pts = grid_points(4);
        let t = PackedRTree::pack(&pts, &LinearOrder::identity(16), 4);
        let q = Mbr {
            lo: vec![10, 10],
            hi: vec![12, 12],
        };
        let (res, cost) = t.range_query(&q);
        assert!(res.is_empty());
        assert_eq!(cost.nodes_visited, 0); // root MBR doesn't intersect
    }

    #[test]
    fn better_order_gives_tighter_leaves() {
        // Row-major (identity) leaves on a 8×8 grid with fanout 8 are full
        // rows: volume 8 each, total 64. A scrambled order mixes far-apart
        // points into leaves, inflating total volume.
        let pts = grid_points(8);
        let good = PackedRTree::pack(&pts, &LinearOrder::identity(64), 8);
        let scramble =
            LinearOrder::from_ranks((0..64).map(|v: usize| (v * 37) % 64).collect()).unwrap();
        let bad = PackedRTree::pack(&pts, &scramble, 8);
        assert!(
            good.total_leaf_volume() < bad.total_leaf_volume(),
            "good {} vs bad {}",
            good.total_leaf_volume(),
            bad.total_leaf_volume()
        );
        assert!(good.total_leaf_margin() <= bad.total_leaf_margin());
    }

    #[test]
    fn ordered_query_yields_monotone_ranks_and_pages() {
        use crate::pages::{PageLayout, PageMapper};
        // A boustrophedon (snake) order on an 8×8 grid: nontrivial but
        // locality-preserving, so a box query spans several leaves.
        let side = 8usize;
        let pts = grid_points(side as i64);
        let ranks: Vec<usize> = (0..side * side)
            .map(|i| {
                let (x, y) = (i / side, i % side);
                x * side + if x % 2 == 1 { side - 1 - y } else { y }
            })
            .collect();
        let order = LinearOrder::from_ranks(ranks).unwrap();
        let t = PackedRTree::pack(&pts, &order, 4);
        let mapper = PageMapper::new(&order, PageLayout::new(4));
        let q = Mbr {
            lo: vec![1, 2],
            hi: vec![6, 5],
        };
        let (ordered, cost) = t.range_query_ordered(&q);
        assert!(!ordered.is_empty());
        // Ranks strictly increase along the ordered result stream, so the
        // derived page ids never move backwards: a forward-only sweep.
        for w in ordered.windows(2) {
            assert!(order.rank_of(w[0]) < order.rank_of(w[1]));
            assert!(mapper.page_of(w[0]) <= mapper.page_of(w[1]));
        }
        // Same result set and identical node accounting as the id-sorted
        // variant.
        let (plain, plain_cost) = t.range_query(&q);
        let mut resorted = ordered.clone();
        resorted.sort_unstable();
        assert_eq!(resorted, plain);
        assert_eq!(cost, plain_cost);
    }

    /// Brute-force kNN reference: score, sort by (distance, id), truncate.
    fn brute_knn(points: &[Vec<i64>], center: &[i64], k: usize) -> Vec<usize> {
        let mut scored: Vec<(i64, usize)> = points
            .iter()
            .enumerate()
            .map(|(i, p)| (chebyshev(center, p), i))
            .collect();
        scored.sort_unstable();
        scored.truncate(k);
        scored.into_iter().map(|(_, id)| id).collect()
    }

    #[test]
    fn knn_best_first_matches_brute_force() {
        let pts = grid_points(8);
        let t = PackedRTree::pack(&pts, &LinearOrder::identity(64), 4);
        for center in [[3i64, 3], [0, 0], [7, 7], [-2, 4], [10, 10]] {
            for k in [1usize, 2, 5, 17, 64] {
                let (got, cost) = t.knn_best_first(&center, k);
                assert_eq!(got, brute_knn(&pts, &center, k), "center {center:?} k {k}");
                assert_eq!(cost.results, k.min(64));
                // Best-first visits each node at most once.
                assert!(cost.nodes_visited <= t.num_nodes());
                assert!(cost.leaves_visited <= t.num_leaves());
            }
        }
    }

    #[test]
    fn knn_best_first_handles_duplicates_and_large_k() {
        // Duplicate points: ties on distance resolve by id.
        let pts = vec![
            vec![2i64, 2],
            vec![2, 2],
            vec![0, 0],
            vec![2, 2],
            vec![5, 5],
        ];
        let t = PackedRTree::pack(&pts, &LinearOrder::identity(5), 2);
        let (got, _) = t.knn_best_first(&[2, 2], 3);
        assert_eq!(got, vec![0, 1, 3]);
        // k beyond the point count clamps; k == 0 touches nothing.
        let (all, _) = t.knn_best_first(&[2, 2], 100);
        assert_eq!(all, brute_knn(&pts, &[2, 2], 5));
        let (none, cost) = t.knn_best_first(&[2, 2], 0);
        assert!(none.is_empty());
        assert_eq!(cost, QueryCost::ZERO);
    }

    #[test]
    fn knn_best_first_prunes_far_subtrees() {
        // A query in one corner of a well-packed 16x16 grid must not
        // visit the whole tree for a small k.
        let pts = grid_points(16);
        let t = PackedRTree::pack(&pts, &LinearOrder::identity(256), 4);
        let (res, cost) = t.knn_best_first(&[0, 0], 4);
        assert_eq!(res.len(), 4);
        assert!(
            cost.nodes_visited < t.num_nodes() / 2,
            "visited {} of {} nodes",
            cost.nodes_visited,
            t.num_nodes()
        );
    }

    #[test]
    fn query_cost_absorb_saturates() {
        let mut a = QueryCost {
            nodes_visited: usize::MAX - 1,
            leaves_visited: 3,
            results: 0,
        };
        a.absorb(&QueryCost {
            nodes_visited: 5,
            leaves_visited: 2,
            results: 1,
        });
        assert_eq!(a.nodes_visited, usize::MAX);
        assert_eq!(a.leaves_visited, 5);
        assert_eq!(a.results, 1);
    }

    #[test]
    #[should_panic(expected = "fanout")]
    fn tiny_fanout_panics() {
        PackedRTree::pack(&grid_points(2), &LinearOrder::identity(4), 1);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_points_panic() {
        PackedRTree::pack(&[], &LinearOrder::identity(0), 4);
    }

    #[test]
    fn single_point_tree() {
        let pts = [vec![5, 5]];
        let t = PackedRTree::pack(&pts, &LinearOrder::identity(1), 4);
        assert_eq!(t.height(), 1);
        let (res, _) = t.range_query(&Mbr {
            lo: vec![0, 0],
            hi: vec![9, 9],
        });
        assert_eq!(res, vec![0]);
    }
}
