//! A byte-owning LRU buffer pool over the page store.
//!
//! Locality pays twice: once in fewer pages per query, and again in cache
//! hits across *successive* queries — nearby queries touch overlapping page
//! sets. The buffer pool makes the second effect measurable *and physical*:
//! frames own their page payloads (capacity-bounded, LRU-evicted), so with
//! a disk-backed store a miss is a real read and a hit really avoids one.
//!
//! Readahead is accounted separately: pages brought in speculatively by
//! the shard's run prefetcher are admitted with [`BufferPool::admit_prefetch`]
//! (counted as `prefetched`, **not** as demand misses), and the first
//! demand access that lands on such a frame counts both a `hit` and a
//! `prefetch_hit` — so `prefetch_hits / prefetched` reads off directly how
//! much of the speculation paid.

use bytes::Bytes;
use std::collections::HashMap;

/// Statistics of a buffer-pool run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BufferStats {
    /// Page requests served from the pool.
    pub hits: usize,
    /// Page requests that had to go to storage.
    pub misses: usize,
    /// Pages evicted to make room.
    pub evictions: usize,
    /// Pages admitted speculatively by readahead.
    pub prefetched: usize,
    /// Demand hits whose frame was brought in by readahead — the subset of
    /// `hits` that would have been `misses` without prefetch.
    pub prefetch_hits: usize,
}

impl BufferStats {
    /// Total page requests (hits + misses).
    pub fn accesses(&self) -> usize {
        self.hits + self.misses
    }

    /// Hit ratio in `[0, 1]`. Guarded against the zero-access case: a run
    /// that never touched the pool reports `0.0`, not `NaN` — callers
    /// aggregating per-shard ratios (some shards may receive no queries)
    /// rely on this.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.accesses();
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Fraction of speculatively admitted pages that served a demand hit,
    /// in `[0, 1]`; `0.0` when nothing was prefetched.
    pub fn prefetch_accuracy(&self) -> f64 {
        if self.prefetched == 0 {
            0.0
        } else {
            self.prefetch_hits as f64 / self.prefetched as f64
        }
    }

    /// Accumulate another run's counters into this one — used to fold
    /// per-shard pool statistics into a fleet-wide total.
    pub fn merge(&mut self, other: &BufferStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
        self.prefetched += other.prefetched;
        self.prefetch_hits += other.prefetch_hits;
    }
}

/// One resident page: its payload, recency stamp, and whether it is an
/// as-yet-untouched readahead admission.
#[derive(Debug)]
struct Frame {
    bytes: Bytes,
    stamp: u64,
    prefetched: bool,
}

/// A fixed-capacity, byte-owning LRU buffer pool.
///
/// Frames hold the actual page payloads, so the pool's memory footprint is
/// genuinely bounded by `capacity · page_size` — with a disk-backed
/// [`crate::store::PageStore`] this is the only place cold page bytes live.
/// (Callers that only want residency accounting can use [`BufferPool::access`],
/// which admits empty payloads.)
#[derive(Debug)]
pub struct BufferPool {
    capacity: usize,
    frames: HashMap<usize, Frame>,
    clock: u64,
    stats: BufferStats,
}

impl BufferPool {
    /// Create a pool with room for `capacity` pages.
    ///
    /// # Panics
    /// Panics on zero capacity (a configuration bug).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "buffer pool needs at least one frame");
        BufferPool {
            capacity,
            frames: HashMap::with_capacity(capacity + 1),
            clock: 0,
            stats: BufferStats::default(),
        }
    }

    /// Maximum number of resident frames.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Demand-access a page: on a hit, returns the resident payload (and
    /// counts a `prefetch_hit` too if readahead brought the frame in); on
    /// a miss returns `None` — the caller reads storage and [`BufferPool::admit`]s.
    pub fn get(&mut self, page: usize) -> Option<Bytes> {
        self.clock += 1;
        if let Some(frame) = self.frames.get_mut(&page) {
            frame.stamp = self.clock;
            self.stats.hits += 1;
            if frame.prefetched {
                frame.prefetched = false;
                self.stats.prefetch_hits += 1;
            }
            return Some(frame.bytes.clone());
        }
        self.stats.misses += 1;
        None
    }

    /// Admit a page read on demand (after a [`BufferPool::get`] miss, which
    /// already counted it), evicting the LRU frame when full.
    pub fn admit(&mut self, page: usize, bytes: Bytes) {
        self.insert(page, bytes, false);
    }

    /// Admit a page brought in by readahead: counted as `prefetched`, not
    /// as a demand miss. A page that is already resident is left untouched
    /// (its recency is not refreshed — speculation must not pin frames).
    pub fn admit_prefetch(&mut self, page: usize, bytes: Bytes) {
        if self.frames.contains_key(&page) {
            return;
        }
        self.stats.prefetched += 1;
        self.insert(page, bytes, true);
    }

    fn insert(&mut self, page: usize, bytes: Bytes, prefetched: bool) {
        if !self.frames.contains_key(&page) && self.frames.len() == self.capacity {
            // Evict the least recently used frame.
            let (&victim, _) = self
                .frames
                .iter()
                .min_by_key(|(_, frame)| frame.stamp)
                .expect("pool is non-empty at capacity");
            self.frames.remove(&victim);
            self.stats.evictions += 1;
        }
        self.clock += 1;
        self.frames.insert(
            page,
            Frame {
                bytes,
                stamp: self.clock,
                prefetched,
            },
        );
    }

    /// Touch a page without bytes: returns `true` on a hit, `false` on a
    /// miss (after which the page is resident with an empty payload,
    /// possibly evicting the LRU page). The accounting-only legacy path.
    pub fn access(&mut self, page: usize) -> bool {
        if self.get(page).is_some() {
            return true;
        }
        self.admit(page, Bytes::new());
        false
    }

    /// Touch every page of a query, in order; returns (hits, misses) for
    /// the query.
    pub fn access_many<I: IntoIterator<Item = usize>>(&mut self, pages: I) -> (usize, usize) {
        let mut h = 0;
        let mut m = 0;
        for p in pages {
            if self.access(p) {
                h += 1;
            } else {
                m += 1;
            }
        }
        (h, m)
    }

    /// Number of currently resident pages.
    pub fn resident_count(&self) -> usize {
        self.frames.len()
    }

    /// Whether a page is currently resident (does not count as a touch).
    pub fn is_resident(&self, page: usize) -> bool {
        self.frames.contains_key(&page)
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> BufferStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_pool_misses_then_hits() {
        let mut pool = BufferPool::new(2);
        assert!(!pool.access(1));
        assert!(pool.access(1));
        let s = pool.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
        assert_eq!(s.evictions, 0);
        assert!((s.hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut pool = BufferPool::new(2);
        pool.access(1);
        pool.access(2);
        pool.access(1); // 2 is now LRU
        pool.access(3); // evicts 2
        assert!(pool.is_resident(1));
        assert!(!pool.is_resident(2));
        assert!(pool.is_resident(3));
        assert_eq!(pool.stats().evictions, 1);
    }

    #[test]
    #[should_panic(expected = "at least one frame")]
    fn zero_capacity_panics() {
        BufferPool::new(0);
    }

    #[test]
    fn access_many_counts_per_query() {
        let mut pool = BufferPool::new(4);
        let (h, m) = pool.access_many([1, 2, 1]);
        assert_eq!((h, m), (1, 2));
        assert_eq!(pool.resident_count(), 2);
    }

    #[test]
    fn empty_stats_ratio_is_zero() {
        let pool = BufferPool::new(1);
        assert_eq!(pool.stats().hit_ratio(), 0.0);
        assert_eq!(pool.stats().accesses(), 0);
        // The zero-access guard must hold for the bare default too (the
        // engine reports ratios for shards that served no queries).
        assert_eq!(BufferStats::default().hit_ratio(), 0.0);
        assert!(BufferStats::default().hit_ratio().is_finite());
        assert_eq!(BufferStats::default().prefetch_accuracy(), 0.0);
    }

    #[test]
    fn access_many_under_capacity_pressure() {
        // Capacity 2, three distinct pages cycling: every access past the
        // warm-up misses because the pool always just evicted the page
        // that comes back two steps later.
        let mut pool = BufferPool::new(2);
        let (h, m) = pool.access_many([1, 2, 3, 1, 2, 3]);
        assert_eq!((h, m), (0, 6));
        let s = pool.stats();
        assert_eq!(s.misses, 6);
        assert_eq!(s.evictions, 4);
        assert_eq!(s.hit_ratio(), 0.0);
        assert_eq!(pool.resident_count(), 2);
    }

    #[test]
    fn access_many_working_set_within_capacity_hits() {
        // The same stream with capacity 3 keeps the whole working set
        // resident: second round is all hits, nothing evicted.
        let mut pool = BufferPool::new(3);
        let (h1, m1) = pool.access_many([1, 2, 3]);
        assert_eq!((h1, m1), (0, 3));
        let (h2, m2) = pool.access_many([1, 2, 3]);
        assert_eq!((h2, m2), (3, 0));
        let s = pool.stats();
        assert_eq!((s.hits, s.misses, s.evictions), (3, 3, 0));
        assert!((s.hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn access_many_mixed_reuse_at_the_eviction_boundary() {
        // Capacity 2: [5, 6, 5] hits the middle reuse, then 7 evicts the
        // LRU page 6; the returns to 6 and 5 each miss and evict in turn,
        // leaving {6, 5} resident.
        let mut pool = BufferPool::new(2);
        let (h, m) = pool.access_many([5, 6, 5, 7, 6, 5]);
        assert_eq!((h, m), (1, 5));
        let s = pool.stats();
        assert_eq!(s.evictions, 3);
        assert!(pool.is_resident(5) && pool.is_resident(6));
        assert!(!pool.is_resident(7));
    }

    #[test]
    fn frames_own_their_bytes() {
        let mut pool = BufferPool::new(2);
        assert!(pool.get(4).is_none());
        pool.admit(4, Bytes::from(vec![1, 2, 3]));
        let back = pool.get(4).expect("resident after admit");
        assert_eq!(&back[..], &[1, 2, 3]);
        // get() on a miss counts the miss; admit() does not double-count.
        let s = pool.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn prefetch_admissions_are_not_demand_misses() {
        let mut pool = BufferPool::new(4);
        pool.admit_prefetch(7, Bytes::from(vec![9]));
        pool.admit_prefetch(8, Bytes::from(vec![8]));
        let s = pool.stats();
        assert_eq!((s.hits, s.misses, s.prefetched), (0, 0, 2));
        // First demand touch of a prefetched frame: hit + prefetch_hit,
        // and the flag clears — a second touch is an ordinary hit.
        assert!(pool.get(7).is_some());
        assert!(pool.get(7).is_some());
        let s = pool.stats();
        assert_eq!((s.hits, s.prefetch_hits), (2, 1));
        assert!((pool.stats().prefetch_accuracy() - 0.5).abs() < 1e-12);
        // Prefetching an already-resident page is a no-op.
        pool.admit_prefetch(7, Bytes::new());
        assert_eq!(pool.stats().prefetched, 2);
    }

    #[test]
    fn prefetched_frames_are_evictable() {
        // Speculative admissions must not pin the pool: demand traffic
        // evicts the untouched prefetched frame first (it is the LRU).
        let mut pool = BufferPool::new(2);
        pool.admit_prefetch(1, Bytes::new());
        pool.access(2);
        pool.access(3); // evicts 1 (oldest stamp, never touched)
        assert!(!pool.is_resident(1));
        assert!(pool.is_resident(2) && pool.is_resident(3));
        assert_eq!(pool.stats().evictions, 1);
        assert_eq!(pool.stats().prefetch_hits, 0);
    }

    #[test]
    fn merge_accumulates_counters() {
        let mut a = BufferStats {
            hits: 3,
            misses: 1,
            evictions: 0,
            prefetched: 2,
            prefetch_hits: 1,
        };
        let b = BufferStats {
            hits: 1,
            misses: 3,
            evictions: 2,
            prefetched: 0,
            prefetch_hits: 0,
        };
        a.merge(&b);
        assert_eq!(
            a,
            BufferStats {
                hits: 4,
                misses: 4,
                evictions: 2,
                prefetched: 2,
                prefetch_hits: 1,
            }
        );
        assert!((a.hit_ratio() - 0.5).abs() < 1e-12);
        // Merging into a zero run keeps the zero-access guard meaningful.
        let mut z = BufferStats::default();
        z.merge(&BufferStats::default());
        assert_eq!(z.hit_ratio(), 0.0);
    }

    #[test]
    fn sequential_scan_with_tiny_pool_never_hits() {
        let mut pool = BufferPool::new(1);
        for p in 0..10 {
            assert!(!pool.access(p));
        }
        assert_eq!(pool.stats().hits, 0);
        assert_eq!(pool.stats().evictions, 9);
    }

    #[test]
    fn locality_improves_hit_rate() {
        // Two interleaved query streams over the same pages: a local
        // stream (walks pages 0..8 in order, window reuse) vs a scattered
        // stream (stride-3 permutation). Same page universe, same pool.
        let local: Vec<usize> = (0..32).map(|i| i / 4).collect();
        let scattered: Vec<usize> = (0..32).map(|i| (i * 3) % 8).collect();
        let run = |stream: &[usize]| {
            let mut pool = BufferPool::new(2);
            pool.access_many(stream.iter().copied());
            pool.stats().hit_ratio()
        };
        assert!(run(&local) > run(&scattered));
    }
}
