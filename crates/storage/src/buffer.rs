//! An LRU buffer pool over the page store.
//!
//! Locality pays twice: once in fewer pages per query, and again in cache
//! hits across *successive* queries — nearby queries touch overlapping page
//! sets. The buffer pool makes the second effect measurable: replay a
//! workload through a pool of `capacity` frames and read off the hit rate.

use std::collections::HashMap;

/// Statistics of a buffer-pool run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BufferStats {
    /// Page requests served from the pool.
    pub hits: usize,
    /// Page requests that had to go to storage.
    pub misses: usize,
    /// Pages evicted to make room.
    pub evictions: usize,
}

impl BufferStats {
    /// Hit ratio in `[0, 1]` (0 for an empty run).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A fixed-capacity LRU buffer pool tracking page residency (payloads live
/// in the [`crate::store::PageStore`]; the pool tracks only identity).
#[derive(Debug)]
pub struct BufferPool {
    capacity: usize,
    /// page → recency stamp of last touch.
    resident: HashMap<usize, u64>,
    clock: u64,
    stats: BufferStats,
}

impl BufferPool {
    /// Create a pool with room for `capacity` pages.
    ///
    /// # Panics
    /// Panics on zero capacity (a configuration bug).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "buffer pool needs at least one frame");
        BufferPool {
            capacity,
            resident: HashMap::with_capacity(capacity + 1),
            clock: 0,
            stats: BufferStats::default(),
        }
    }

    /// Touch a page: returns `true` on a hit, `false` on a miss (after
    /// which the page is resident, possibly evicting the LRU page).
    pub fn access(&mut self, page: usize) -> bool {
        self.clock += 1;
        if let Some(stamp) = self.resident.get_mut(&page) {
            *stamp = self.clock;
            self.stats.hits += 1;
            return true;
        }
        self.stats.misses += 1;
        if self.resident.len() == self.capacity {
            // Evict the least recently used frame.
            let (&victim, _) = self
                .resident
                .iter()
                .min_by_key(|(_, &stamp)| stamp)
                .expect("pool is non-empty at capacity");
            self.resident.remove(&victim);
            self.stats.evictions += 1;
        }
        self.resident.insert(page, self.clock);
        false
    }

    /// Touch every page of a query, in order; returns (hits, misses) for
    /// the query.
    pub fn access_many<I: IntoIterator<Item = usize>>(&mut self, pages: I) -> (usize, usize) {
        let mut h = 0;
        let mut m = 0;
        for p in pages {
            if self.access(p) {
                h += 1;
            } else {
                m += 1;
            }
        }
        (h, m)
    }

    /// Number of currently resident pages.
    pub fn resident_count(&self) -> usize {
        self.resident.len()
    }

    /// Whether a page is currently resident (does not count as a touch).
    pub fn is_resident(&self, page: usize) -> bool {
        self.resident.contains_key(&page)
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> BufferStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_pool_misses_then_hits() {
        let mut pool = BufferPool::new(2);
        assert!(!pool.access(1));
        assert!(pool.access(1));
        let s = pool.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
        assert_eq!(s.evictions, 0);
        assert!((s.hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut pool = BufferPool::new(2);
        pool.access(1);
        pool.access(2);
        pool.access(1); // 2 is now LRU
        pool.access(3); // evicts 2
        assert!(pool.is_resident(1));
        assert!(!pool.is_resident(2));
        assert!(pool.is_resident(3));
        assert_eq!(pool.stats().evictions, 1);
    }

    #[test]
    #[should_panic(expected = "at least one frame")]
    fn zero_capacity_panics() {
        BufferPool::new(0);
    }

    #[test]
    fn access_many_counts_per_query() {
        let mut pool = BufferPool::new(4);
        let (h, m) = pool.access_many([1, 2, 1]);
        assert_eq!((h, m), (1, 2));
        assert_eq!(pool.resident_count(), 2);
    }

    #[test]
    fn empty_stats_ratio_is_zero() {
        let pool = BufferPool::new(1);
        assert_eq!(pool.stats().hit_ratio(), 0.0);
    }

    #[test]
    fn sequential_scan_with_tiny_pool_never_hits() {
        let mut pool = BufferPool::new(1);
        for p in 0..10 {
            assert!(!pool.access(p));
        }
        assert_eq!(pool.stats().hits, 0);
        assert_eq!(pool.stats().evictions, 9);
    }

    #[test]
    fn locality_improves_hit_rate() {
        // Two interleaved query streams over the same pages: a local
        // stream (walks pages 0..8 in order, window reuse) vs a scattered
        // stream (stride-3 permutation). Same page universe, same pool.
        let local: Vec<usize> = (0..32).map(|i| i / 4).collect();
        let scattered: Vec<usize> = (0..32).map(|i| (i * 3) % 8).collect();
        let run = |stream: &[usize]| {
            let mut pool = BufferPool::new(2);
            pool.access_many(stream.iter().copied());
            pool.stats().hit_ratio()
        };
        assert!(run(&local) > run(&scattered));
    }
}
