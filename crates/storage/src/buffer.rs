//! An LRU buffer pool over the page store.
//!
//! Locality pays twice: once in fewer pages per query, and again in cache
//! hits across *successive* queries — nearby queries touch overlapping page
//! sets. The buffer pool makes the second effect measurable: replay a
//! workload through a pool of `capacity` frames and read off the hit rate.

use std::collections::HashMap;

/// Statistics of a buffer-pool run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BufferStats {
    /// Page requests served from the pool.
    pub hits: usize,
    /// Page requests that had to go to storage.
    pub misses: usize,
    /// Pages evicted to make room.
    pub evictions: usize,
}

impl BufferStats {
    /// Total page requests (hits + misses).
    pub fn accesses(&self) -> usize {
        self.hits + self.misses
    }

    /// Hit ratio in `[0, 1]`. Guarded against the zero-access case: a run
    /// that never touched the pool reports `0.0`, not `NaN` — callers
    /// aggregating per-shard ratios (some shards may receive no queries)
    /// rely on this.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.accesses();
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Accumulate another run's counters into this one — used to fold
    /// per-shard pool statistics into a fleet-wide total.
    pub fn merge(&mut self, other: &BufferStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
    }
}

/// A fixed-capacity LRU buffer pool tracking page residency (payloads live
/// in the [`crate::store::PageStore`]; the pool tracks only identity).
#[derive(Debug)]
pub struct BufferPool {
    capacity: usize,
    /// page → recency stamp of last touch.
    resident: HashMap<usize, u64>,
    clock: u64,
    stats: BufferStats,
}

impl BufferPool {
    /// Create a pool with room for `capacity` pages.
    ///
    /// # Panics
    /// Panics on zero capacity (a configuration bug).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "buffer pool needs at least one frame");
        BufferPool {
            capacity,
            resident: HashMap::with_capacity(capacity + 1),
            clock: 0,
            stats: BufferStats::default(),
        }
    }

    /// Touch a page: returns `true` on a hit, `false` on a miss (after
    /// which the page is resident, possibly evicting the LRU page).
    pub fn access(&mut self, page: usize) -> bool {
        self.clock += 1;
        if let Some(stamp) = self.resident.get_mut(&page) {
            *stamp = self.clock;
            self.stats.hits += 1;
            return true;
        }
        self.stats.misses += 1;
        if self.resident.len() == self.capacity {
            // Evict the least recently used frame.
            let (&victim, _) = self
                .resident
                .iter()
                .min_by_key(|(_, &stamp)| stamp)
                .expect("pool is non-empty at capacity");
            self.resident.remove(&victim);
            self.stats.evictions += 1;
        }
        self.resident.insert(page, self.clock);
        false
    }

    /// Touch every page of a query, in order; returns (hits, misses) for
    /// the query.
    pub fn access_many<I: IntoIterator<Item = usize>>(&mut self, pages: I) -> (usize, usize) {
        let mut h = 0;
        let mut m = 0;
        for p in pages {
            if self.access(p) {
                h += 1;
            } else {
                m += 1;
            }
        }
        (h, m)
    }

    /// Number of currently resident pages.
    pub fn resident_count(&self) -> usize {
        self.resident.len()
    }

    /// Whether a page is currently resident (does not count as a touch).
    pub fn is_resident(&self, page: usize) -> bool {
        self.resident.contains_key(&page)
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> BufferStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_pool_misses_then_hits() {
        let mut pool = BufferPool::new(2);
        assert!(!pool.access(1));
        assert!(pool.access(1));
        let s = pool.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
        assert_eq!(s.evictions, 0);
        assert!((s.hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut pool = BufferPool::new(2);
        pool.access(1);
        pool.access(2);
        pool.access(1); // 2 is now LRU
        pool.access(3); // evicts 2
        assert!(pool.is_resident(1));
        assert!(!pool.is_resident(2));
        assert!(pool.is_resident(3));
        assert_eq!(pool.stats().evictions, 1);
    }

    #[test]
    #[should_panic(expected = "at least one frame")]
    fn zero_capacity_panics() {
        BufferPool::new(0);
    }

    #[test]
    fn access_many_counts_per_query() {
        let mut pool = BufferPool::new(4);
        let (h, m) = pool.access_many([1, 2, 1]);
        assert_eq!((h, m), (1, 2));
        assert_eq!(pool.resident_count(), 2);
    }

    #[test]
    fn empty_stats_ratio_is_zero() {
        let pool = BufferPool::new(1);
        assert_eq!(pool.stats().hit_ratio(), 0.0);
        assert_eq!(pool.stats().accesses(), 0);
        // The zero-access guard must hold for the bare default too (the
        // engine reports ratios for shards that served no queries).
        assert_eq!(BufferStats::default().hit_ratio(), 0.0);
        assert!(BufferStats::default().hit_ratio().is_finite());
    }

    #[test]
    fn access_many_under_capacity_pressure() {
        // Capacity 2, three distinct pages cycling: every access past the
        // warm-up misses because the pool always just evicted the page
        // that comes back two steps later.
        let mut pool = BufferPool::new(2);
        let (h, m) = pool.access_many([1, 2, 3, 1, 2, 3]);
        assert_eq!((h, m), (0, 6));
        let s = pool.stats();
        assert_eq!(s.misses, 6);
        assert_eq!(s.evictions, 4);
        assert_eq!(s.hit_ratio(), 0.0);
        assert_eq!(pool.resident_count(), 2);
    }

    #[test]
    fn access_many_working_set_within_capacity_hits() {
        // The same stream with capacity 3 keeps the whole working set
        // resident: second round is all hits, nothing evicted.
        let mut pool = BufferPool::new(3);
        let (h1, m1) = pool.access_many([1, 2, 3]);
        assert_eq!((h1, m1), (0, 3));
        let (h2, m2) = pool.access_many([1, 2, 3]);
        assert_eq!((h2, m2), (3, 0));
        let s = pool.stats();
        assert_eq!((s.hits, s.misses, s.evictions), (3, 3, 0));
        assert!((s.hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn access_many_mixed_reuse_at_the_eviction_boundary() {
        // Capacity 2: [5, 6, 5] hits the middle reuse, then 7 evicts the
        // LRU page 6; the returns to 6 and 5 each miss and evict in turn,
        // leaving {6, 5} resident.
        let mut pool = BufferPool::new(2);
        let (h, m) = pool.access_many([5, 6, 5, 7, 6, 5]);
        assert_eq!((h, m), (1, 5));
        let s = pool.stats();
        assert_eq!(s.evictions, 3);
        assert!(pool.is_resident(5) && pool.is_resident(6));
        assert!(!pool.is_resident(7));
    }

    #[test]
    fn merge_accumulates_counters() {
        let mut a = BufferStats {
            hits: 3,
            misses: 1,
            evictions: 0,
        };
        let b = BufferStats {
            hits: 1,
            misses: 3,
            evictions: 2,
        };
        a.merge(&b);
        assert_eq!(
            a,
            BufferStats {
                hits: 4,
                misses: 4,
                evictions: 2
            }
        );
        assert!((a.hit_ratio() - 0.5).abs() < 1e-12);
        // Merging into a zero run keeps the zero-access guard meaningful.
        let mut z = BufferStats::default();
        z.merge(&BufferStats::default());
        assert_eq!(z.hit_ratio(), 0.0);
    }

    #[test]
    fn sequential_scan_with_tiny_pool_never_hits() {
        let mut pool = BufferPool::new(1);
        for p in 0..10 {
            assert!(!pool.access(p));
        }
        assert_eq!(pool.stats().hits, 0);
        assert_eq!(pool.stats().evictions, 9);
    }

    #[test]
    fn locality_improves_hit_rate() {
        // Two interleaved query streams over the same pages: a local
        // stream (walks pages 0..8 in order, window reuse) vs a scattered
        // stream (stride-3 permutation). Same page universe, same pool.
        let local: Vec<usize> = (0..32).map(|i| i / 4).collect();
        let scattered: Vec<usize> = (0..32).map(|i| (i * 3) % 8).collect();
        let run = |stream: &[usize]| {
            let mut pool = BufferPool::new(2);
            pool.access_many(stream.iter().copied());
            pool.stats().hit_ratio()
        };
        assert!(run(&local) > run(&scattered));
    }
}
