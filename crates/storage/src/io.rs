//! A seek/transfer I/O cost model.
//!
//! Charges a query `seek_cost` per sequential run of pages plus
//! `transfer_cost` per page — the standard first-order disk model. With
//! `seek_cost ≫ transfer_cost` this rewards mappings that keep query
//! results contiguous (few clusters), which is precisely the paper's
//! locality argument stated in milliseconds.
//!
//! The model's two primitives map one-to-one onto the out-of-core tier
//! in [`crate::diskfile`]: a `seek` is starting one `PageFile::read_run`
//! (repositioning the file cursor), a `transfer` is one page frame read
//! and checksum-verified inside that run. [`IoModel`]'s defaults keep
//! the paper's 2003-era spinning-disk ratio for cost *estimates*; the
//! serving stack's simulated-latency twin
//! (`slpm_serve::stream::ServiceModel`) instead calibrates its defaults
//! from measured `diskfile` read timings — same shape, different
//! coefficients, each documented where it lives.

use crate::pages::PageMapper;
use serde::Serialize;

/// Cost coefficients (arbitrary time units; defaults approximate a 2003-era
/// disk with ~10 ms seek and ~0.1 ms per 8 KiB page transfer, matching the
/// paper's publication context).
#[derive(Debug, Clone, Copy, Serialize)]
pub struct IoModel {
    /// Cost of starting a sequential run (seek + rotational latency).
    pub seek_cost: f64,
    /// Cost of transferring one page.
    pub transfer_cost: f64,
}

impl Default for IoModel {
    fn default() -> Self {
        IoModel {
            seek_cost: 10.0,
            transfer_cost: 0.1,
        }
    }
}

/// Broken-down cost of one query.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct IoCost {
    /// Distinct pages read.
    pub pages: usize,
    /// Sequential runs (seeks).
    pub runs: usize,
    /// Total model cost `runs · seek + pages · transfer`.
    pub total: f64,
}

impl IoModel {
    /// Cost of reading the pages covering `vertices` under `mapper`.
    pub fn query_cost<I: IntoIterator<Item = usize> + Clone>(
        &self,
        mapper: &PageMapper,
        vertices: I,
    ) -> IoCost {
        let pages = mapper.page_count(vertices.clone());
        let runs = mapper.page_runs(vertices);
        IoCost {
            pages,
            runs,
            total: runs as f64 * self.seek_cost + pages as f64 * self.transfer_cost,
        }
    }

    /// Cost of a full sequential scan of `num_pages` pages (one seek).
    pub fn scan_cost(&self, num_pages: usize) -> f64 {
        if num_pages == 0 {
            0.0
        } else {
            self.seek_cost + num_pages as f64 * self.transfer_cost
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pages::PageLayout;
    use spectral_lpm::LinearOrder;

    fn order16() -> LinearOrder {
        LinearOrder::identity(16)
    }

    #[test]
    fn contiguous_query_costs_one_seek() {
        let order = order16();
        let m = PageMapper::new(&order, PageLayout::new(2));
        let model = IoModel::default();
        let c = model.query_cost(&m, [0, 1, 2, 3]);
        assert_eq!(c.pages, 2);
        assert_eq!(c.runs, 1);
        assert!((c.total - (10.0 + 0.2)).abs() < 1e-12);
    }

    #[test]
    fn scattered_query_pays_per_run() {
        let order = order16();
        let m = PageMapper::new(&order, PageLayout::new(2));
        let model = IoModel::default();
        let c = model.query_cost(&m, [0, 6, 12]);
        assert_eq!(c.pages, 3);
        assert_eq!(c.runs, 3);
        assert!((c.total - (30.0 + 0.3)).abs() < 1e-12);
    }

    #[test]
    fn empty_query_is_free() {
        let order = order16();
        let m = PageMapper::new(&order, PageLayout::new(2));
        let c = IoModel::default().query_cost(&m, std::iter::empty());
        assert_eq!(c.pages, 0);
        assert_eq!(c.runs, 0);
        assert_eq!(c.total, 0.0);
    }

    #[test]
    fn scan_cost_is_single_seek() {
        let model = IoModel::default();
        assert!((model.scan_cost(100) - 20.0).abs() < 1e-12);
        assert_eq!(model.scan_cost(0), 0.0);
    }

    #[test]
    fn better_locality_costs_less() {
        // The same 4 vertices: contiguous under identity, scattered under a
        // permuted order.
        let contiguous_order = LinearOrder::identity(8);
        let contiguous = PageMapper::new(&contiguous_order, PageLayout::new(2));
        let scattered_order = LinearOrder::from_ranks(vec![0, 2, 4, 6, 1, 3, 5, 7]).unwrap();
        let scattered = PageMapper::new(&scattered_order, PageLayout::new(2));
        let model = IoModel::default();
        let q = [0usize, 1, 2, 3];
        assert!(model.query_cost(&contiguous, q).total < model.query_cost(&scattered, q).total);
    }
}
