//! Offline stand-in for the `serde_derive` proc-macro crate.
//!
//! The reproduction only uses `#[derive(Serialize)]` as machine-readable
//! documentation of which structs are row types; nothing in-tree serializes
//! through serde yet. The derives therefore expand to nothing. When a real
//! serialization backend lands, replace this shim with the crates.io
//! `serde`/`serde_derive` pair — no source changes needed.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
