//! Offline stand-in for the `rand` crate (0.8-style API).
//!
//! Implements exactly the surface the reproduction uses — `rand::rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::gen_range` over integer and float
//! ranges, and `Rng::gen_bool` — on top of xoshiro256++ seeded through
//! SplitMix64 (the standard seeding recipe). Everything is deterministic
//! given the seed, which is all the callers (seeded experiments and tests)
//! rely on; the stream differs from the real crate's ChaCha-based `StdRng`,
//! so only code that hard-codes expected sample values would notice a swap.

use std::ops::{Range, RangeInclusive};

/// A source of random `u64`s, mirroring `rand::RngCore` (subset).
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic construction from a `u64` seed, mirroring
/// `rand::SeedableRng` (subset).
pub trait SeedableRng: Sized {
    /// Build the generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, mirroring `rand::Rng` (subset).
pub trait Rng: RngCore {
    /// Uniform sample from a range (`a..b` or `a..=b`), panicking on an
    /// empty range like the real crate.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli sample: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} not in [0, 1]"
        );
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Map 64 random bits to a uniform `f64` in `[0, 1)` (53-bit mantissa).
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range that knows how to sample a uniform `T`, mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draw one uniform sample from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = unit_f64(rng.next_u64()) as $t;
                let v = self.start + (self.end - self.start) * u;
                // The affine map can round up onto the excluded end (u is
                // in [0,1) in f64, but the product rounds — always for f32,
                // occasionally for f64): nudge back inside.
                if v >= self.end {
                    self.end.next_down().max(self.start)
                } else {
                    v
                }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let u = unit_f64(rng.next_u64()) as $t;
                start + (end - start) * u
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic generator: xoshiro256++ seeded via SplitMix64.
    ///
    /// Stands in for `rand::rngs::StdRng`; statistically strong enough for
    /// simulation workloads and property tests, not cryptographic.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion of the seed, per Blackman & Vigna.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ step.
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            let v = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&v));
            let f = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn f32_exclusive_range_never_hits_upper_bound() {
        // f32 rounding of the affine map can land exactly on the excluded
        // end; the sampler must nudge back inside.
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100_000 {
            let v = rng.gen_range(0.0f32..1.0);
            assert!((0.0..1.0).contains(&v), "sample {v} escaped [0, 1)");
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn distribution_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!(
                (800..1200).contains(&c),
                "bucket count {c} far from uniform"
            );
        }
    }
}
