//! A loom/CHESS-style deterministic concurrency model checker
//! (compiled only under the `model` feature).
//!
//! # What this is
//!
//! Every determinism claim the tree makes — bitwise-identical digests
//! across shards × threads × in-flight batches — rests on hand-rolled
//! concurrency: the Mutex+Condvar MPMC channels in this shim, the
//! lifetime-erasure latch in [`crate::thread::run_scoped`], and
//! `slpm_serve`'s worker pool / per-shard FIFO queues. "The tests passed
//! on the schedule the OS happened to pick" is not evidence of
//! correctness; this module makes scheduling a *controlled input* and
//! explores it exhaustively.
//!
//! # How it works
//!
//! [`explore`] runs a test closure many times. Each run is a *session*:
//! the closure and every thread it spawns become **model threads** — real
//! OS threads, but gated so that exactly one executes at a time. Every
//! synchronisation operation ([`crate::sync::Mutex::lock`],
//! [`crate::sync::Condvar::wait`]/notify, atomic ops, spawn/join, yield) is a
//! *scheduling point*: the running thread consults the scheduler, which
//! either lets it continue or hands control to another runnable thread.
//! Execution between scheduling points is invisible to other threads (it
//! touches only data the sync protocol protects), so enumerating the
//! scheduler's choices enumerates every observably distinct interleaving.
//!
//! Choices are recorded as a decision vector; the driver replays a prefix
//! and extends it depth-first until the tree is exhausted (or a schedule
//! cap is hit). A **bounded-preemption budget** (CHESS-style) keeps the
//! space tractable: switching away from a thread that could have
//! continued costs one unit of budget; forced switches (the running
//! thread blocked or finished) are free. Most real concurrency bugs
//! manifest within two preemptions.
//!
//! A run that reaches a state with unfinished threads and nothing
//! runnable is a **deadlock or lost wakeup**; [`explore`] panics with the
//! per-thread state and the schedule that produced it. A run whose
//! closure panics (a failed assertion on some schedule) re-raises that
//! panic. Memory is modelled as sequentially consistent; condition
//! variables do not wake spuriously (all tree code waits in `while`
//! loops, which subsumes spurious wakeups).
//!
//! # Scope
//!
//! Only primitives from [`crate::sync`] (`crossbeam::sync`) are
//! instrumented, and only when constructed *inside* a session. The same
//! types compile to the plain `std` primitives outside a session (and
//! the whole module compiles away without the `model` feature), so
//! production code pays nothing.

use std::any::Any;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc as StdArc, Condvar as StdCondvar, Mutex as StdMutex};

/// Model-thread id within one session (0 is the root closure).
pub type Tid = usize;

/// Knobs bounding one [`explore`] call.
#[derive(Clone, Copy, Debug)]
pub struct ModelOptions {
    /// Maximum *preemptions* per schedule: switches away from a thread
    /// that could have continued. Forced switches (current thread blocked
    /// or finished) are always free. `None` removes the bound (full DFS —
    /// use only on tiny harnesses).
    pub preemption_bound: Option<usize>,
    /// Stop after this many schedules even if the tree is not exhausted
    /// (the [`Report`] says which happened).
    pub max_schedules: usize,
    /// Hard cap on live model threads per session (harness sanity bound).
    pub max_threads: usize,
    /// Per-run scheduling-point cap: a run exceeding it is reported as a
    /// livelock (something is spinning without making progress).
    pub max_steps: usize,
}

impl Default for ModelOptions {
    fn default() -> Self {
        ModelOptions {
            preemption_bound: Some(2),
            max_schedules: 10_000,
            max_threads: 8,
            max_steps: 100_000,
        }
    }
}

/// What one [`explore`] call covered.
#[derive(Clone, Copy, Debug)]
pub struct Report {
    /// Distinct schedules executed (every one ran the closure to
    /// completion with no deadlock).
    pub schedules: usize,
    /// True when the bounded-preemption schedule tree was explored
    /// completely; false when `max_schedules` cut exploration short.
    pub exhausted: bool,
    /// Deepest decision vector seen (an effort metric for reports).
    pub max_decisions: usize,
}

/// Panic payload used to unwind model threads when a session aborts
/// (deadlock found, or the driver tears the run down). Never escapes
/// [`explore`].
struct Abort;

/// True when a caught panic payload is the model's internal
/// session-teardown signal. Harness code that swallows panics (e.g. a
/// worker pool's per-job `catch_unwind`) MUST check this and re-raise
/// the payload with `resume_unwind` instead of recording it as a job
/// failure — otherwise an aborting session cannot unwind its threads.
pub fn is_abort(payload: &(dyn Any + 'static)) -> bool {
    payload.is::<Abort>()
}

/// Run state of one model thread.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum ThreadState {
    /// May be chosen by the scheduler.
    Runnable,
    /// Waiting on a mutex, condvar or join; not schedulable until a wake
    /// event moves it back to `Runnable`.
    Blocked,
    /// Returned or unwound; never schedulable again.
    Finished,
}

/// One-shot handoff gate: a deselected model thread parks here until the
/// scheduler picks it again.
struct Gate {
    go: StdMutex<bool>,
    cv: StdCondvar,
}

impl Gate {
    fn new() -> StdArc<Gate> {
        StdArc::new(Gate {
            go: StdMutex::new(false),
            cv: StdCondvar::new(),
        })
    }

    fn open(&self) {
        *self.go.lock().expect("gate lock") = true;
        self.cv.notify_one();
    }

    fn park(&self) {
        let mut go = self.go.lock().expect("gate lock");
        while !*go {
            go = self.cv.wait(go).expect("gate lock");
        }
        *go = false;
    }
}

/// Bookkeeping for one model thread.
struct ThreadSlot {
    state: ThreadState,
    gate: StdArc<Gate>,
    /// Threads blocked in `join` on this one.
    join_waiters: Vec<Tid>,
    /// Human-readable label for deadlock traces.
    name: String,
    /// What the thread is blocked on, for deadlock traces.
    blocked_on: Option<String>,
}

/// One scheduler choice: which of `alternatives` runnable threads ran.
#[derive(Clone, Copy)]
struct Decision {
    chosen: usize,
    alternatives: usize,
}

/// Virtual-mutex bookkeeping (the guarded data lives in the
/// [`sync::Mutex`] instance; only ownership lives here).
struct MutexRec {
    owner: Option<Tid>,
    waiters: Vec<Tid>,
}

/// Virtual-condvar bookkeeping: FIFO wait queue.
struct CondvarRec {
    waiters: VecDeque<Tid>,
}

/// Why a session ended.
enum Outcome {
    /// Every model thread finished.
    Complete,
    /// Unfinished threads with nothing runnable (deadlock / lost wakeup),
    /// or a livelock past `max_steps`; carries the rendered trace.
    Stuck(String),
}

/// Everything mutable about one session, under one lock. Model execution
/// is serialised (one thread runs at a time), so a single lock costs
/// nothing and removes lock-ordering hazards by construction.
struct Inner {
    threads: Vec<ThreadSlot>,
    current: Tid,
    /// Replayed decision prefix for this run.
    prefix: Vec<usize>,
    /// Next prefix slot to consume.
    cursor: usize,
    /// Decisions actually taken this run (≥ prefix, DFS extends it).
    decisions: Vec<Decision>,
    preemptions: usize,
    steps: usize,
    aborting: bool,
    outcome: Option<Outcome>,
    mutexes: Vec<MutexRec>,
    condvars: Vec<CondvarRec>,
    /// First uncaught panic from the root closure (re-raised by the
    /// driver so schedule-dependent assertion failures surface).
    root_panic: Option<Box<dyn Any + Send + 'static>>,
    /// Uncaught panics from non-root threads that nobody joined.
    unjoined_panics: usize,
    /// OS handles of every model thread, joined by the driver between
    /// runs.
    os_handles: Vec<std::thread::JoinHandle<()>>,
}

/// One exploration run: the deterministic scheduler all instrumented
/// primitives of the run report to.
pub(crate) struct Session {
    inner: StdMutex<Inner>,
    /// Signalled when `outcome` is set; the driver waits here.
    done: StdCondvar,
    opts: ModelOptions,
}

thread_local! {
    /// The session and model-thread id of the current OS thread, when it
    /// is a model thread. Instrumented primitives check this to decide
    /// between model and real behaviour.
    static CURRENT: RefCell<Option<(StdArc<Session>, Tid)>> = const { RefCell::new(None) };
}

/// The current thread's session context, if it is a model thread.
pub(crate) fn current_session() -> Option<(StdArc<Session>, Tid)> {
    CURRENT.with(|c| c.borrow().clone())
}

/// How the calling thread leaves a scheduling point.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Disposition {
    /// Still runnable: may be chosen to continue (a switch away from it
    /// is a preemption).
    Continue,
    /// Already marked `Blocked` by the caller: must be switched away
    /// from; parks until rescheduled.
    Block,
    /// Already marked `Finished`: hands off and returns for good.
    Finish,
}

impl Session {
    fn new(opts: ModelOptions, prefix: Vec<usize>) -> Session {
        Session {
            inner: StdMutex::new(Inner {
                threads: Vec::new(),
                current: 0,
                prefix,
                cursor: 0,
                decisions: Vec::new(),
                preemptions: 0,
                steps: 0,
                aborting: false,
                outcome: None,
                mutexes: Vec::new(),
                condvars: Vec::new(),
                root_panic: None,
                unjoined_panics: 0,
                os_handles: Vec::new(),
            }),
            done: StdCondvar::new(),
            opts,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().expect("model session lock")
    }

    /// Abort the session: every parked thread is released and will
    /// unwind with [`Abort`] at its next scheduling point.
    fn abort_locked(g: &mut Inner) {
        g.aborting = true;
        for slot in &g.threads {
            slot.gate.open();
        }
    }

    /// Render per-thread states for a deadlock report.
    fn render_stuck(g: &Inner, why: &str) -> String {
        let mut out = format!("{why}; thread states:\n");
        for (tid, slot) in g.threads.iter().enumerate() {
            out.push_str(&format!(
                "  [{tid}] {:<12} {:?}{}\n",
                slot.name,
                slot.state,
                slot.blocked_on
                    .as_deref()
                    .map(|r| format!(" (waiting on {r})"))
                    .unwrap_or_default()
            ));
        }
        out.push_str(&format!(
            "  schedule: {} decisions, {} preemptions",
            g.decisions.len(),
            g.preemptions
        ));
        out
    }

    /// The heart of the checker: one scheduling point. Decides who runs
    /// next (consuming or extending the decision vector), detects
    /// deadlock/livelock, performs the gate handoff, and parks the caller
    /// when it was deselected.
    fn reschedule(self: &StdArc<Session>, me: Tid, disposition: Disposition) {
        let (park, my_gate) = {
            let mut g = self.lock();
            if g.aborting {
                if disposition == Disposition::Finish {
                    return;
                }
                drop(g);
                std::panic::panic_any(Abort);
            }
            g.steps += 1;
            if g.steps > self.opts.max_steps {
                let trace = Session::render_stuck(
                    &g,
                    "livelock: schedule exceeded max_steps without finishing",
                );
                g.outcome = Some(Outcome::Stuck(trace));
                Session::abort_locked(&mut g);
                self.done.notify_all();
                if disposition == Disposition::Finish {
                    return;
                }
                drop(g);
                std::panic::panic_any(Abort);
            }
            // Candidates, current thread first (so DFS's default choice 0
            // = "keep running" = the cheap no-handoff path), then by tid.
            let mut alts: Vec<Tid> = Vec::new();
            if disposition == Disposition::Continue {
                alts.push(me);
            }
            for tid in 0..g.threads.len() {
                if tid != me && g.threads[tid].state == ThreadState::Runnable {
                    alts.push(tid);
                }
            }
            if alts.is_empty() {
                let all_finished = g.threads.iter().all(|t| t.state == ThreadState::Finished);
                if all_finished {
                    g.outcome = Some(Outcome::Complete);
                    self.done.notify_all();
                    return;
                }
                let trace =
                    Session::render_stuck(&g, "deadlock or lost wakeup: no runnable thread");
                g.outcome = Some(Outcome::Stuck(trace));
                Session::abort_locked(&mut g);
                self.done.notify_all();
                if disposition == Disposition::Finish {
                    return;
                }
                drop(g);
                std::panic::panic_any(Abort);
            }
            // Preemption budget: once spent, a runnable current thread
            // always continues (forced switches above are unaffected).
            let budget_left = self.opts.preemption_bound.is_none_or(|b| g.preemptions < b);
            let constrained = if disposition == Disposition::Continue && !budget_left {
                &alts[..1]
            } else {
                &alts[..]
            };
            let idx = if constrained.len() == 1 {
                0
            } else {
                let i = if g.cursor < g.prefix.len() {
                    g.prefix[g.cursor]
                } else {
                    0
                };
                assert!(
                    i < constrained.len(),
                    "model: replay diverged (prefix index {i} of {} alternatives) — \
                     the harness closure is not deterministic",
                    constrained.len()
                );
                g.cursor += 1;
                g.decisions.push(Decision {
                    chosen: i,
                    alternatives: constrained.len(),
                });
                i
            };
            let next = constrained[idx];
            if next != me && disposition == Disposition::Continue {
                g.preemptions += 1;
            }
            g.current = next;
            let park = next != me;
            if park {
                g.threads[next].gate.open();
            }
            (park && disposition != Disposition::Finish, {
                StdArc::clone(&g.threads[me].gate)
            })
        };
        if park {
            my_gate.park();
            if self.lock().aborting {
                std::panic::panic_any(Abort);
            }
        }
    }

    /// Mark `me` blocked on `what` (trace label) under the session lock.
    fn block(&self, me: Tid, what: String) {
        let mut g = self.lock();
        g.threads[me].state = ThreadState::Blocked;
        g.threads[me].blocked_on = Some(what);
    }

    /// Mark `tid` runnable again (wake event).
    fn wake_locked(g: &mut Inner, tid: Tid) {
        debug_assert_ne!(g.threads[tid].state, ThreadState::Finished);
        g.threads[tid].state = ThreadState::Runnable;
        g.threads[tid].blocked_on = None;
    }
}

// ---------------------------------------------------------------------------
// Resource protocols (called from `sync` with a known session context).
// ---------------------------------------------------------------------------

pub(crate) fn register_mutex(sess: &StdArc<Session>) -> usize {
    let mut g = sess.lock();
    g.mutexes.push(MutexRec {
        owner: None,
        waiters: Vec::new(),
    });
    g.mutexes.len() - 1
}

pub(crate) fn register_condvar(sess: &StdArc<Session>) -> usize {
    let mut g = sess.lock();
    g.condvars.push(CondvarRec {
        waiters: VecDeque::new(),
    });
    g.condvars.len() - 1
}

/// Acquire virtual mutex `id`: schedule, then contend until ownership.
pub(crate) fn mutex_lock(sess: &StdArc<Session>, me: Tid, id: usize) {
    sess.reschedule(me, Disposition::Continue);
    loop {
        {
            let mut g = sess.lock();
            if g.aborting {
                drop(g);
                std::panic::panic_any(Abort);
            }
            let rec = &mut g.mutexes[id];
            if rec.owner.is_none() {
                rec.owner = Some(me);
                return;
            }
            rec.waiters.push(me);
            drop(g);
            sess.block(me, format!("mutex #{id}"));
        }
        // Forced switch; resumed once the owner released and the
        // scheduler picked us — barge for the lock again (real mutexes
        // barge too, so this loses no real interleavings).
        sess.reschedule(me, Disposition::Block);
    }
}

/// Release virtual mutex `id`, waking every contender to re-barge.
pub(crate) fn mutex_unlock(sess: &StdArc<Session>, me: Tid, id: usize) {
    {
        let mut g = sess.lock();
        if g.aborting {
            // Unwinding drops guards; just release bookkeeping silently.
            g.mutexes[id].owner = None;
            return;
        }
        let rec = &mut g.mutexes[id];
        debug_assert_eq!(rec.owner, Some(me), "model mutex released by non-owner");
        rec.owner = None;
        let waiters = std::mem::take(&mut rec.waiters);
        for w in waiters {
            Session::wake_locked(&mut g, w);
        }
    }
    // Release is a scheduling point: a woken contender may grab the lock
    // before we proceed (the handoff race every lost-wakeup bug lives in).
    sess.reschedule(me, Disposition::Continue);
}

/// Condvar wait: atomically release mutex `mid`, enqueue on condvar
/// `cid`, block; on wakeup re-acquire `mid`.
pub(crate) fn condvar_wait(sess: &StdArc<Session>, me: Tid, cid: usize, mid: usize) {
    {
        let mut g = sess.lock();
        if g.aborting {
            drop(g);
            std::panic::panic_any(Abort);
        }
        g.condvars[cid].waiters.push_back(me);
        let rec = &mut g.mutexes[mid];
        debug_assert_eq!(rec.owner, Some(me), "condvar wait without the lock");
        rec.owner = None;
        let waiters = std::mem::take(&mut rec.waiters);
        for w in waiters {
            Session::wake_locked(&mut g, w);
        }
        g.threads[me].state = ThreadState::Blocked;
        g.threads[me].blocked_on = Some(format!("condvar #{cid}"));
    }
    sess.reschedule(me, Disposition::Block);
    // Notified (moved to Runnable) and scheduled: re-acquire the mutex.
    mutex_lock(sess, me, mid);
}

/// Wake the longest-waiting thread on condvar `cid`, if any.
pub(crate) fn condvar_notify(sess: &StdArc<Session>, me: Tid, cid: usize, all: bool) {
    {
        let mut g = sess.lock();
        if g.aborting {
            return;
        }
        if all {
            let waiters = std::mem::take(&mut g.condvars[cid].waiters);
            for w in waiters {
                Session::wake_locked(&mut g, w);
            }
        } else if let Some(w) = g.condvars[cid].waiters.pop_front() {
            Session::wake_locked(&mut g, w);
        }
        // A notify with no waiters is a no-op — exactly the hole lost
        // wakeups hide in; exploring schedules around this point is what
        // finds them.
    }
    sess.reschedule(me, Disposition::Continue);
}

/// A sequentially-consistent atomic step (the op runs under the session
/// lock, after a scheduling point).
pub(crate) fn atomic_step<R>(sess: &StdArc<Session>, me: Tid, op: impl FnOnce() -> R) -> R {
    sess.reschedule(me, Disposition::Continue);
    let _g = sess.lock();
    op()
}

/// Explicit yield: a pure scheduling point.
pub(crate) fn yield_point(sess: &StdArc<Session>, me: Tid) {
    sess.reschedule(me, Disposition::Continue);
}

/// Spawn a model thread running `f`; the new thread is immediately
/// schedulable (spawn is itself a scheduling point).
pub(crate) fn spawn_model<T, F>(
    sess: &StdArc<Session>,
    me: Tid,
    name: Option<String>,
    f: F,
) -> crate::sync::thread::JoinHandle<T>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    let result: StdArc<StdMutex<Option<std::thread::Result<T>>>> = StdArc::new(StdMutex::new(None));
    let tid = {
        let mut g = sess.lock();
        let tid = g.threads.len();
        assert!(
            tid < sess.opts.max_threads,
            "model: session exceeded max_threads ({}) — shrink the harness",
            sess.opts.max_threads
        );
        g.threads.push(ThreadSlot {
            state: ThreadState::Runnable,
            gate: Gate::new(),
            join_waiters: Vec::new(),
            name: name.unwrap_or_else(|| format!("t{tid}")),
            blocked_on: None,
        });
        tid
    };
    let os = {
        let sess2 = StdArc::clone(sess);
        let result2 = StdArc::clone(&result);
        std::thread::Builder::new()
            .name(format!("slpm-model-{tid}"))
            .spawn(move || run_model_thread(sess2, tid, result2, f))
            .expect("spawning a model thread failed")
    };
    sess.lock().os_handles.push(os);
    sess.reschedule(me, Disposition::Continue);
    crate::sync::thread::JoinHandle::model(StdArc::clone(sess), tid, result)
}

/// Body of every model OS thread: park until first scheduled, run the
/// closure, then retire through the finish protocol.
fn run_model_thread<T, F>(
    sess: StdArc<Session>,
    tid: Tid,
    result: StdArc<StdMutex<Option<std::thread::Result<T>>>>,
    f: F,
) where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    CURRENT.with(|c| *c.borrow_mut() = Some((StdArc::clone(&sess), tid)));
    let gate = StdArc::clone(&sess.lock().threads[tid].gate);
    gate.park();
    if sess.lock().aborting {
        finish_thread(&sess, tid, None);
        return;
    }
    let outcome = catch_unwind(AssertUnwindSafe(f));
    match outcome {
        Ok(v) => {
            *result.lock().expect("model result slot") = Some(Ok(v));
            finish_thread(&sess, tid, None);
        }
        Err(payload) if payload.is::<Abort>() => {
            finish_thread(&sess, tid, None);
        }
        Err(payload) => {
            if tid == 0 {
                // The root closure's panic is the run's verdict; the
                // driver re-raises it.
                finish_thread(&sess, tid, Some(payload));
            } else {
                *result.lock().expect("model result slot") = Some(Err(payload));
                sess.lock().unjoined_panics += 1;
                finish_thread(&sess, tid, None);
            }
        }
    }
    CURRENT.with(|c| *c.borrow_mut() = None);
}

/// Retire a model thread: record the root panic (if any), wake joiners,
/// and hand the schedule to whoever is next.
fn finish_thread(sess: &StdArc<Session>, tid: Tid, root_panic: Option<Box<dyn Any + Send>>) {
    {
        let mut g = sess.lock();
        if let Some(p) = root_panic {
            g.root_panic = Some(p);
        }
        g.threads[tid].state = ThreadState::Finished;
        g.threads[tid].blocked_on = None;
        let joiners = std::mem::take(&mut g.threads[tid].join_waiters);
        for j in joiners {
            Session::wake_locked(&mut g, j);
        }
    }
    sess.reschedule(tid, Disposition::Finish);
}

/// Block until model thread `target` finishes, then take its result.
pub(crate) fn join_model<T: Send + 'static>(
    sess: &StdArc<Session>,
    me: Tid,
    target: Tid,
    result: &StdArc<StdMutex<Option<std::thread::Result<T>>>>,
) -> std::thread::Result<T> {
    loop {
        {
            let mut g = sess.lock();
            if g.aborting {
                drop(g);
                std::panic::panic_any(Abort);
            }
            if g.threads[target].state == ThreadState::Finished {
                drop(g);
                let taken = result
                    .lock()
                    .expect("model result slot")
                    .take()
                    .expect("model thread finished without storing a result");
                if taken.is_err() {
                    sess.lock().unjoined_panics -= 1;
                }
                return taken;
            }
            g.threads[target].join_waiters.push(me);
            g.threads[me].state = ThreadState::Blocked;
            g.threads[me].blocked_on = Some(format!("join of thread {target}"));
        }
        sess.reschedule(me, Disposition::Block);
    }
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

/// Exhaustively explore the interleavings of `f` (up to the options'
/// bounds), running it once per schedule.
///
/// `f` must be *deterministic modulo scheduling*: given the same
/// scheduler choices it must perform the same sequence of sync
/// operations (no wall-clock, no ambient randomness, no iteration over
/// randomly-seeded hash maps). Every sync object it uses must be created
/// inside the closure so each run starts fresh.
///
/// # Panics
/// Panics when any schedule deadlocks, loses a wakeup (a blocked thread
/// nobody will ever wake), livelocks past `max_steps`, or when the
/// closure itself panics on some schedule (that panic is re-raised, so
/// `assert!`s inside `f` become schedule-universal properties).
pub fn explore<F>(opts: ModelOptions, f: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    assert!(
        current_session().is_none(),
        "model: explore() must not be nested inside a session"
    );
    let f = StdArc::new(f);
    let mut prefix: Vec<usize> = Vec::new();
    let mut schedules = 0usize;
    let mut max_decisions = 0usize;
    loop {
        let sess = StdArc::new(Session::new(opts, std::mem::take(&mut prefix)));
        // Register and launch the root model thread (tid 0).
        {
            let mut g = sess.lock();
            g.threads.push(ThreadSlot {
                state: ThreadState::Runnable,
                gate: Gate::new(),
                join_waiters: Vec::new(),
                name: "root".to_string(),
                blocked_on: None,
            });
        }
        let root_result: StdArc<StdMutex<Option<std::thread::Result<()>>>> =
            StdArc::new(StdMutex::new(None));
        let os_root = {
            let sess2 = StdArc::clone(&sess);
            let result2 = StdArc::clone(&root_result);
            let f2 = StdArc::clone(&f);
            std::thread::Builder::new()
                .name("slpm-model-0".to_string())
                .spawn(move || run_model_thread(sess2, 0, result2, move || f2()))
                .expect("spawning the root model thread failed")
        };
        sess.lock().os_handles.push(os_root);
        // Kick the root and wait for the run's outcome.
        let root_gate = StdArc::clone(&sess.lock().threads[0].gate);
        root_gate.open();
        let (stuck, decisions, root_panic, unjoined) = {
            let mut g = sess.lock();
            while g.outcome.is_none() {
                g = sess.done.wait(g).expect("model session lock");
            }
            // Release every OS thread before joining (abort already did
            // under Stuck; Complete means they have all finished).
            let handles = std::mem::take(&mut g.os_handles);
            let stuck = match g.outcome.take() {
                Some(Outcome::Stuck(trace)) => Some(trace),
                _ => None,
            };
            let decisions = std::mem::take(&mut g.decisions);
            let root_panic = g.root_panic.take();
            let unjoined = g.unjoined_panics;
            drop(g);
            for h in handles {
                let _ = h.join();
            }
            (stuck, decisions, root_panic, unjoined)
        };
        if let Some(trace) = stuck {
            panic!("model checker: stuck schedule after {schedules} clean schedule(s)\n{trace}");
        }
        if let Some(payload) = root_panic {
            eprintln!(
                "model checker: closure panicked on schedule {schedules} \
                 ({} decisions deep)",
                decisions.len()
            );
            resume_unwind(payload);
        }
        assert!(
            unjoined == 0,
            "model checker: {unjoined} spawned thread(s) panicked and were never joined"
        );
        schedules += 1;
        max_decisions = max_decisions.max(decisions.len());
        if schedules >= opts.max_schedules {
            return Report {
                schedules,
                exhausted: false,
                max_decisions,
            };
        }
        // DFS advance: bump the deepest decision that still has an
        // unexplored alternative; drop everything after it.
        let mut next_prefix: Option<Vec<usize>> = None;
        for i in (0..decisions.len()).rev() {
            if decisions[i].chosen + 1 < decisions[i].alternatives {
                let mut p: Vec<usize> = decisions[..i].iter().map(|d| d.chosen).collect();
                p.push(decisions[i].chosen + 1);
                next_prefix = Some(p);
                break;
            }
        }
        match next_prefix {
            Some(p) => prefix = p,
            None => {
                return Report {
                    schedules,
                    exhausted: true,
                    max_decisions,
                }
            }
        }
    }
}
