//! Multi-producer multi-consumer channels, mirroring `crossbeam::channel`.
//!
//! Implemented on `Mutex<VecDeque>` + two `Condvar`s rather than
//! `std::sync::mpsc` because the consumers must be *cloneable*: the
//! persistent worker pool (`slpm_serve::pool`) hands one receiver to every
//! long-lived worker thread, and `std`'s receiver is single-consumer.
//! Only the surface the tree actually uses is provided:
//!
//! * [`unbounded`] / [`bounded`] constructors (capacity ≥ 1; the real
//!   crate's zero-capacity rendezvous channels are not supported),
//! * cloneable [`Sender`] / [`Receiver`] halves,
//! * blocking [`Sender::send`] / [`Receiver::recv`], non-blocking
//!   [`Receiver::try_recv`], and a draining [`Receiver::iter`].
//!
//! Disconnect semantics match crossbeam's: `send` fails once every
//! receiver is gone, `recv` fails once the queue is empty **and** every
//! sender is gone (messages in flight are still delivered first).

use crate::sync::{Arc, Condvar, Mutex};
use std::collections::VecDeque;
use std::fmt;

/// Error of [`Sender::send`]: every receiver disconnected; the unsent
/// message is handed back.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

// Manual impl without a `T: Debug` bound, as in the real crate (the
// message may be an unprintable closure).
impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

/// Error of [`Receiver::recv`]: the channel is empty and every sender
/// disconnected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty, disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Error of [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// Nothing queued right now, but senders remain connected.
    Empty,
    /// Nothing queued and every sender disconnected.
    Disconnected,
}

impl fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TryRecvError::Empty => f.write_str("channel is empty"),
            TryRecvError::Disconnected => f.write_str("channel is empty and disconnected"),
        }
    }
}

impl std::error::Error for TryRecvError {}

/// Queue state guarded by the channel mutex.
struct Inner<T> {
    queue: VecDeque<T>,
    /// `None` = unbounded; `Some(cap)` blocks senders at `cap` queued.
    capacity: Option<usize>,
    senders: usize,
    receivers: usize,
}

/// The shared core of one channel.
struct Shared<T> {
    inner: Mutex<Inner<T>>,
    /// Signalled when a message is queued or the last sender leaves.
    not_empty: Condvar,
    /// Signalled when a message is taken or the last receiver leaves.
    not_full: Condvar,
}

/// The sending half of a channel. Cloning adds a producer.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half of a channel. Cloning adds a consumer.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Create a channel with no capacity bound: `send` never blocks.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    with_capacity(None)
}

/// Create a channel holding at most `capacity` queued messages; `send`
/// blocks while the channel is full.
///
/// # Panics
/// Panics on zero capacity: crossbeam's rendezvous semantics are not
/// implemented by this shim.
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    assert!(
        capacity >= 1,
        "bounded(0) rendezvous channels are not supported by the shim"
    );
    with_capacity(Some(capacity))
}

fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        inner: Mutex::new(Inner {
            queue: VecDeque::new(),
            capacity,
            senders: 1,
            receivers: 1,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Queue a message, blocking while a bounded channel is full. Fails —
    /// returning the message — once every receiver has disconnected.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut inner = self.shared.inner.lock().expect("channel poisoned");
        loop {
            if inner.receivers == 0 {
                return Err(SendError(value));
            }
            let full = inner.capacity.is_some_and(|cap| inner.queue.len() >= cap);
            if !full {
                inner.queue.push_back(value);
                drop(inner);
                self.shared.not_empty.notify_one();
                return Ok(());
            }
            inner = self.shared.not_full.wait(inner).expect("channel poisoned");
        }
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.inner.lock().expect("channel poisoned").senders += 1;
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let remaining = {
            let mut inner = self.shared.inner.lock().expect("channel poisoned");
            inner.senders -= 1;
            inner.senders
        };
        if remaining == 0 {
            // Wake receivers parked in `recv` so they observe disconnect.
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Take the next message, blocking while the channel is empty and at
    /// least one sender remains. Fails once empty **and** disconnected.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut inner = self.shared.inner.lock().expect("channel poisoned");
        loop {
            if let Some(value) = inner.queue.pop_front() {
                drop(inner);
                self.shared.not_full.notify_one();
                return Ok(value);
            }
            if inner.senders == 0 {
                return Err(RecvError);
            }
            inner = self.shared.not_empty.wait(inner).expect("channel poisoned");
        }
    }

    /// Take the next message without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut inner = self.shared.inner.lock().expect("channel poisoned");
        if let Some(value) = inner.queue.pop_front() {
            drop(inner);
            self.shared.not_full.notify_one();
            return Ok(value);
        }
        if inner.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// A blocking iterator draining the channel until it disconnects.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { receiver: self }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared
            .inner
            .lock()
            .expect("channel poisoned")
            .receivers += 1;
        Receiver {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let remaining = {
            let mut inner = self.shared.inner.lock().expect("channel poisoned");
            inner.receivers -= 1;
            inner.receivers
        };
        if remaining == 0 {
            // Wake senders parked in `send` so they observe disconnect.
            self.shared.not_full.notify_all();
        }
    }
}

/// Blocking iterator over received messages (see [`Receiver::iter`]).
pub struct Iter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.receiver.recv().ok()
    }
}

impl<'a, T> IntoIterator for &'a Receiver<T> {
    type Item = T;
    type IntoIter = Iter<'a, T>;

    fn into_iter(self) -> Iter<'a, T> {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn send_then_recv_in_order() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn recv_fails_after_all_senders_drop() {
        let (tx, rx) = unbounded();
        tx.send(7).unwrap();
        drop(tx);
        // In-flight message still delivered, then disconnect.
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn send_fails_after_all_receivers_drop() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert_eq!(tx.send(5), Err(SendError(5)));
    }

    #[test]
    fn cloned_sender_keeps_channel_alive() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        drop(tx);
        tx2.send(9).unwrap();
        assert_eq!(rx.recv(), Ok(9));
        drop(tx2);
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn recv_blocks_until_a_send_arrives() {
        let (tx, rx) = unbounded();
        let handle = thread::spawn(move || rx.recv());
        thread::sleep(Duration::from_millis(20));
        tx.send(42usize).unwrap();
        assert_eq!(handle.join().unwrap(), Ok(42));
    }

    #[test]
    fn bounded_send_blocks_until_room() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let handle = thread::spawn(move || {
            tx.send(2).unwrap(); // blocks until the first recv
            tx
        });
        thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv(), Ok(1));
        let tx = handle.join().unwrap();
        assert_eq!(rx.recv(), Ok(2));
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    #[should_panic(expected = "rendezvous")]
    fn zero_capacity_unsupported() {
        let _ = bounded::<usize>(0);
    }

    #[test]
    fn mpmc_every_message_delivered_exactly_once() {
        // 4 producers × 250 messages drained by 3 consumers: the union of
        // everything received must be exactly the multiset sent.
        let (tx, rx) = unbounded::<usize>();
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let tx = tx.clone();
                thread::spawn(move || {
                    for i in 0..250 {
                        tx.send(p * 1000 + i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let rx = rx.clone();
                thread::spawn(move || rx.iter().collect::<Vec<usize>>())
            })
            .collect();
        drop(rx);
        for p in producers {
            p.join().unwrap();
        }
        let mut got: Vec<usize> = Vec::new();
        for c in consumers {
            got.extend(c.join().unwrap());
        }
        got.sort_unstable();
        let mut want: Vec<usize> = (0..4)
            .flat_map(|p| (0..250).map(move |i| p * 1000 + i))
            .collect();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn last_sender_drop_wakes_every_blocked_receiver_exactly_once() {
        // Three receivers all parked in `recv` on an empty channel; the
        // last sender clone dropping must wake *all* of them (notify_all
        // on last-sender-drop), and each must observe disconnect exactly
        // once — no receiver may hang, receive a phantom message, or be
        // woken twice.
        let (tx, rx) = unbounded::<usize>();
        let tx2 = tx.clone();
        let receivers: Vec<_> = (0..3)
            .map(|_| {
                let rx = rx.clone();
                thread::spawn(move || rx.recv())
            })
            .collect();
        // Let the receivers reach the condvar wait before disconnecting.
        thread::sleep(Duration::from_millis(30));
        drop(tx); // not the last sender: must wake nobody
        thread::sleep(Duration::from_millis(10));
        drop(tx2); // last sender: must wake all three
        for handle in receivers {
            assert_eq!(
                handle.join().expect("receiver thread must not panic"),
                Err(RecvError),
                "a blocked receiver must observe disconnect, not a value"
            );
        }
    }

    #[test]
    fn last_receiver_drop_wakes_every_blocked_sender() {
        // The symmetric edge: two senders parked in `send` on a full
        // bounded channel; the last receiver dropping must wake both so
        // they observe disconnect and hand their message back.
        let (tx, rx) = bounded::<usize>(1);
        tx.send(0).unwrap(); // fill the channel
        let senders: Vec<_> = (0..2)
            .map(|i| {
                let tx = tx.clone();
                thread::spawn(move || tx.send(100 + i))
            })
            .collect();
        thread::sleep(Duration::from_millis(30));
        drop(rx); // only receiver: both parked senders must wake
        let mut returned: Vec<usize> = senders
            .into_iter()
            .map(|h| {
                let err = h
                    .join()
                    .expect("sender thread must not panic")
                    .expect_err("send into a receiverless channel must fail");
                err.0
            })
            .collect();
        returned.sort_unstable();
        assert_eq!(returned, vec![100, 101], "unsent messages are handed back");
    }

    #[test]
    fn iter_drains_then_stops() {
        let (tx, rx) = unbounded();
        for i in 0..5 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let all: Vec<i32> = rx.iter().collect();
        assert_eq!(all, vec![0, 1, 2, 3, 4]);
    }
}
