//! Offline stand-in for the `crossbeam` crate.
//!
//! Two surfaces are provided, each only as wide as the tree needs:
//!
//! * [`thread`] — `thread::scope` / `Scope::spawn` /
//!   `ScopedJoinHandle::join`, implemented on top of `std::thread::scope`
//!   (stable since Rust 1.63, which postdates crossbeam's scoped-thread
//!   API). Semantics match crossbeam's: `scope` returns `Ok(r)` when no
//!   spawned thread panicked, and spawn closures receive the scope so they
//!   could spawn nested threads.
//! * [`channel`] — cloneable MPMC channels (`unbounded` / `bounded`,
//!   blocking `send`/`recv`, `try_recv`, `iter`) over `Mutex` + `Condvar`,
//!   feeding the persistent worker pool in `slpm_serve`.

pub mod channel;

/// Scoped threads, mirroring `crossbeam::thread`.
pub mod thread {
    use std::any::Any;
    use std::thread as stdthread;

    /// Result type of [`scope`]: `Err` carries the panic payload of a
    /// spawned thread that panicked, as in crossbeam.
    pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

    /// A scope handle passed to [`scope`]'s closure and to every spawned
    /// thread's closure.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope stdthread::Scope<'scope, 'env>,
    }

    /// Handle to a scoped thread; joins to the closure's return value.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: stdthread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread to finish, returning its result (or the
        /// panic payload if it panicked).
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped thread. As in crossbeam, the closure receives the
        /// scope so it can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || {
                    let scope = Scope { inner };
                    f(&scope)
                }),
            }
        }
    }

    /// Run `f` with a scope in which borrowing threads can be spawned; all
    /// threads are joined before `scope` returns. As in crossbeam, a panic
    /// in a spawned (and unjoined) thread is reported as `Err`, while a
    /// panic in `f` itself propagates to the caller.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        let mut closure_panic = None;
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            stdthread::scope(|s| {
                let scope = Scope { inner: s };
                match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&scope))) {
                    Ok(r) => Some(r),
                    Err(payload) => {
                        // Defer: let the scope join its threads first, then
                        // propagate the closure's own panic untouched.
                        closure_panic = Some(payload);
                        None
                    }
                }
            })
        }));
        if let Some(payload) = closure_panic {
            std::panic::resume_unwind(payload);
        }
        match result {
            Ok(Some(r)) => Ok(r),
            Ok(None) => unreachable!("closure panic handled above"),
            // An unjoined spawned thread panicked; std re-raises it at
            // scope exit and crossbeam reports it as Err.
            Err(payload) => Err(payload),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::thread;

    #[test]
    fn scope_returns_ok_with_joined_results() {
        let data = [1, 2, 3];
        let sum = thread::scope(|s| {
            let handles: Vec<_> = data.iter().map(|&x| s.spawn(move |_| x * 2)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<i32>()
        })
        .unwrap();
        assert_eq!(sum, 12);
    }

    #[test]
    fn joined_thread_panic_surfaces_at_join() {
        let r = thread::scope(|s| {
            let h = s.spawn(|_| panic!("worker failed"));
            h.join()
        })
        .expect("scope itself is fine when the panic was consumed via join");
        assert!(r.is_err());
    }

    #[test]
    fn unjoined_thread_panic_reported_as_err() {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // silence the worker's panic
        let r = thread::scope(|s| {
            s.spawn(|_| panic!("unjoined worker"));
        });
        std::panic::set_hook(prev);
        assert!(r.is_err());
    }

    #[test]
    fn closure_panic_propagates_like_crossbeam() {
        let caught = std::panic::catch_unwind(|| {
            let _ = thread::scope(|_| panic!("main closure bug: {}", 42));
        })
        .unwrap_err();
        // The payload may be &str (rustc const-folds literal format args)
        // or String; either way the original message must survive.
        let msg = caught
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| caught.downcast_ref::<String>().cloned())
            .expect("panic payload is a message");
        assert!(msg.contains("main closure bug: 42"), "got {msg:?}");
    }

    #[test]
    fn nested_spawn_works() {
        let n = thread::scope(|s| {
            s.spawn(|inner| inner.spawn(|_| 7).join().unwrap())
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(n, 7);
    }
}
