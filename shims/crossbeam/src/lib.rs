//! Offline stand-in for the `crossbeam` crate.
//!
//! Two surfaces are provided, each only as wide as the tree needs:
//!
//! * [`thread`] — `thread::scope` / `Scope::spawn` /
//!   `ScopedJoinHandle::join`, implemented on top of `std::thread::scope`
//!   (stable since Rust 1.63, which postdates crossbeam's scoped-thread
//!   API). Semantics match crossbeam's: `scope` returns `Ok(r)` when no
//!   spawned thread panicked, and spawn closures receive the scope so they
//!   could spawn nested threads.
//! * [`channel`] — cloneable MPMC channels (`unbounded` / `bounded`,
//!   blocking `send`/`recv`, `try_recv`, `iter`) over `Mutex` + `Condvar`,
//!   feeding the persistent worker pool in `slpm_serve`.
//!
//! Both are written against the [`sync`] facade: normally a zero-cost
//! re-export of `std::sync`, but under the `model` feature the same
//! names become instrumented primitives driven by the deterministic
//! schedule-exploring checker in [`model`] — see `crates/check` for the
//! harnesses that exhaustively verify the channel, the `run_scoped`
//! latch, and the serving pool protocol over every interleaving.

pub mod channel;
#[cfg(feature = "model")]
pub mod model;
pub mod sync;

/// Scoped threads, mirroring `crossbeam::thread`.
pub mod thread {
    use std::any::Any;
    use std::thread as stdthread;

    /// Result type of [`scope`]: `Err` carries the panic payload of a
    /// spawned thread that panicked, as in crossbeam.
    pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

    /// A scope handle passed to [`scope`]'s closure and to every spawned
    /// thread's closure.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope stdthread::Scope<'scope, 'env>,
    }

    /// Handle to a scoped thread; joins to the closure's return value.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: stdthread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread to finish, returning its result (or the
        /// panic payload if it panicked).
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped thread. As in crossbeam, the closure receives the
        /// scope so it can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || {
                    let scope = Scope { inner };
                    f(&scope)
                }),
            }
        }
    }

    /// Run `f` with a scope in which borrowing threads can be spawned; all
    /// threads are joined before `scope` returns. As in crossbeam, a panic
    /// in a spawned (and unjoined) thread is reported as `Err`, while a
    /// panic in `f` itself propagates to the caller.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        let mut closure_panic = None;
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            stdthread::scope(|s| {
                let scope = Scope { inner: s };
                match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&scope))) {
                    Ok(r) => Some(r),
                    Err(payload) => {
                        // Defer: let the scope join its threads first, then
                        // propagate the closure's own panic untouched.
                        closure_panic = Some(payload);
                        None
                    }
                }
            })
        }));
        if let Some(payload) = closure_panic {
            std::panic::resume_unwind(payload);
        }
        match result {
            Ok(Some(r)) => Ok(r),
            Ok(None) => unreachable!("closure panic handled above"),
            // An unjoined spawned thread panicked; std re-raises it at
            // scope exit and crossbeam reports it as Err.
            Err(payload) => Err(payload),
        }
    }

    use crate::sync::{Arc, Condvar, Mutex};

    /// Tracks every lent wrapper until it settles.
    struct LatchState {
        /// Wrappers handed to `submit` whose `Guard` has not yet
        /// dropped. `wait_idle` returns only once this reaches 0.
        in_flight: usize,
        /// Jobs that did not complete normally (panicked, or were
        /// dropped by the executor without running).
        failed: usize,
        /// One flag per job, set under this lock when its guard
        /// settles. `wait_idle` asserts all of them afterwards: a
        /// clear flag at that point would mean a wrapper escaped
        /// accounting and could still touch `'env` borrows — the
        /// exact unsoundness the latch exists to rule out.
        settled: Vec<bool>,
    }
    struct Latch {
        state: Mutex<LatchState>,
        done: Condvar,
    }
    impl Latch {
        fn wait_idle(&self) -> usize {
            let mut state = self.state.lock().expect("latch lock");
            while state.in_flight > 0 {
                state = self.done.wait(state).expect("latch lock");
            }
            // No-escape invariant: `in_flight == 0` was observed
            // under the same lock each guard settles under, so every
            // flag set happens-before this read. A clear flag here is
            // a latch bug, and returning would be unsound — fail hard.
            assert!(
                state.settled.iter().all(|&s| s),
                "run_scoped latch: in_flight hit 0 with unsettled job(s) — \
                 a borrowed wrapper escaped accounting"
            );
            state.failed
        }
    }
    /// Settles slot `idx` of the latch when dropped; `completed` is
    /// set only after the wrapped job returned normally, so a panic
    /// or an unrun drop counts as a failure.
    struct Guard {
        latch: Arc<Latch>,
        idx: usize,
        completed: bool,
    }
    impl Guard {
        fn new(latch: &Arc<Latch>, idx: usize) -> Self {
            let mut state = latch.state.lock().expect("latch lock");
            state.in_flight += 1;
            assert!(
                state.in_flight <= state.settled.len(),
                "run_scoped latch: more guards than jobs"
            );
            Guard {
                latch: Arc::clone(latch),
                idx,
                completed: false,
            }
        }
    }
    impl Drop for Guard {
        fn drop(&mut self) {
            let mut state = self.latch.state.lock().expect("latch lock");
            assert!(
                !state.settled[self.idx],
                "run_scoped latch: job {} settled twice",
                self.idx
            );
            state.settled[self.idx] = true;
            state.in_flight -= 1;
            if !self.completed {
                state.failed += 1;
            }
            if state.in_flight == 0 {
                self.latch.done.notify_all();
            }
        }
    }
    /// Blocks until the latch drains even when `submit` (or the caller's
    /// local span) unwinds — wrappers already queued on the executor may
    /// still be running and must not outlive the caller's borrows.
    struct WaitOnUnwind<'a>(&'a Latch);
    impl Drop for WaitOnUnwind<'_> {
        fn drop(&mut self) {
            self.0.wait_idle();
        }
    }

    /// Lend a batch of **borrowing** jobs to a persistent executor.
    ///
    /// [`scope`] spawns fresh OS threads per call; this is the
    /// complementary primitive for executors whose threads already exist
    /// (e.g. a long-lived worker pool): each job is re-packaged as a
    /// `'static` closure and handed to `submit`, which must arrange for it
    /// to run eventually (a dropped-unrun job is detected and reported,
    /// never leaked). `run_scoped` blocks until every submitted job has
    /// finished or been dropped — no borrow escapes the call, which is
    /// exactly the guarantee that makes handing borrowed closures to
    /// `'static` worker threads sound.
    ///
    /// # Panics
    /// Panics (after all jobs have settled) when any job panicked or was
    /// dropped without running — the moral equivalent of [`scope`]
    /// returning `Err`.
    pub fn run_scoped<'env>(
        jobs: Vec<Box<dyn FnOnce() + Send + 'env>>,
        submit: &mut dyn FnMut(Box<dyn FnOnce() + Send + 'static>),
    ) {
        run_scoped_with_local(jobs, submit, || {});
    }

    /// [`run_scoped`] with **caller participation**: after every job has
    /// been submitted, `local` runs on the *calling* thread, concurrently
    /// with the executor working the submitted jobs; only then does the
    /// call block until every lent wrapper has settled. A dispatcher that
    /// keeps one span of the work for itself thus hands the executor
    /// `workers − 1` jobs instead of `workers`, and the calling thread
    /// computes instead of idling in the latch wait.
    ///
    /// `local` runs strictly on the caller, so it needs no `Send` bound
    /// and no lifetime erasure. If it unwinds, the latch drain guard
    /// still blocks until all submitted jobs have settled before the
    /// panic propagates — no borrow escapes on any path.
    ///
    /// # Panics
    /// Panics when any submitted job panicked or was dropped unrun, and
    /// propagates a panic from `local` itself (after draining).
    pub fn run_scoped_with_local<'env, L>(
        jobs: Vec<Box<dyn FnOnce() + Send + 'env>>,
        submit: &mut dyn FnMut(Box<dyn FnOnce() + Send + 'static>),
        local: L,
    ) where
        L: FnOnce(),
    {
        let latch = Arc::new(Latch {
            state: Mutex::new(LatchState {
                in_flight: 0,
                failed: 0,
                settled: vec![false; jobs.len()],
            }),
            done: Condvar::new(),
        });
        let drain = WaitOnUnwind(&latch);
        for (idx, job) in jobs.into_iter().enumerate() {
            let guard = Guard::new(&latch, idx);
            let wrapper: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
                let mut guard = guard;
                job();
                guard.completed = true;
            });
            // SAFETY: lifetime erasure of `'env` borrows to `'static`,
            // sound because no erased borrow can be used after `'env`
            // ends. The argument, piece by piece:
            //
            // 1. Every borrow captured by `wrapper` (via `job`) is valid
            //    for `'env`, which outlives this call — the signature
            //    guarantees it.
            // 2. `wrapper` owns the only handle to those borrows, and the
            //    `Guard` it also owns settles its latch slot exactly once
            //    when the wrapper is dropped — whether the job ran to
            //    completion, panicked (the guard unwinds with it), or the
            //    executor dropped the box unrun. Rust's ownership rules
            //    make a drop the last event of the wrapper's life, so
            //    "slot settled" happens-after every use of the borrows.
            // 3. This function does not return, on any path, until
            //    `in_flight == 0`: the normal path calls
            //    `latch.wait_idle()`, and an unwind out of `submit` or
            //    out of the caller's `local` span hits `drain`'s `Drop`,
            //    which calls the same `wait_idle`.
            //    `wait_idle` additionally asserts that every per-job
            //    settled flag was set under the same lock, so a wrapper
            //    that somehow escaped accounting aborts the process
            //    instead of returning borrows to a dead frame.
            // 4. Therefore every wrapper has been dropped before control
            //    returns to the caller, and no erased borrow outlives
            //    `'env`. This is the lifetime-erasure contract
            //    crossbeam's own scoped threads are built on; the
            //    `crates/check` model harness `run_scoped` tests verify
            //    the latch protocol over every bounded interleaving.
            let wrapper = unsafe {
                std::mem::transmute::<
                    Box<dyn FnOnce() + Send + 'env>,
                    Box<dyn FnOnce() + Send + 'static>,
                >(wrapper)
            };
            submit(wrapper);
        }
        // The caller's own span: runs here, on the calling thread, while
        // the executor works the submitted jobs. An unwind is safe — the
        // `drain` guard above blocks until every wrapper settles.
        local();
        let failed = latch.wait_idle();
        std::mem::forget(drain);
        if failed > 0 {
            panic!("{failed} scoped job(s) panicked or were dropped unrun");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::thread;

    #[test]
    fn scope_returns_ok_with_joined_results() {
        let data = [1, 2, 3];
        let sum = thread::scope(|s| {
            let handles: Vec<_> = data.iter().map(|&x| s.spawn(move |_| x * 2)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<i32>()
        })
        .unwrap();
        assert_eq!(sum, 12);
    }

    #[test]
    fn joined_thread_panic_surfaces_at_join() {
        let r = thread::scope(|s| {
            let h = s.spawn(|_| panic!("worker failed"));
            h.join()
        })
        .expect("scope itself is fine when the panic was consumed via join");
        assert!(r.is_err());
    }

    #[test]
    fn unjoined_thread_panic_reported_as_err() {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // silence the worker's panic
        let r = thread::scope(|s| {
            s.spawn(|_| panic!("unjoined worker"));
        });
        std::panic::set_hook(prev);
        assert!(r.is_err());
    }

    #[test]
    fn closure_panic_propagates_like_crossbeam() {
        let caught = std::panic::catch_unwind(|| {
            let _ = thread::scope(|_| panic!("main closure bug: {}", 42));
        })
        .unwrap_err();
        // The payload may be &str (rustc const-folds literal format args)
        // or String; either way the original message must survive.
        let msg = caught
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| caught.downcast_ref::<String>().cloned())
            .expect("panic payload is a message");
        assert!(msg.contains("main closure bug: 42"), "got {msg:?}");
    }

    #[test]
    fn run_scoped_runs_borrowing_jobs_on_external_threads() {
        let mut data = vec![0usize; 64];
        {
            let (tx, rx) = std::sync::mpsc::channel::<Box<dyn FnOnce() + Send>>();
            let worker = std::thread::spawn(move || {
                for job in rx {
                    job();
                }
            });
            let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = data
                .chunks_mut(16)
                .enumerate()
                .map(|(c, chunk)| {
                    Box::new(move || {
                        for (i, v) in chunk.iter_mut().enumerate() {
                            *v = c * 16 + i;
                        }
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            thread::run_scoped(jobs, &mut |job| tx.send(job).expect("worker alive"));
            drop(tx);
            worker.join().unwrap();
        }
        // Every borrowed chunk was filled before run_scoped returned.
        assert_eq!(data, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn run_scoped_reports_panicked_and_dropped_jobs() {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // silence the workers
                                                // Executor that runs the first job (which panics, killing the
                                                // thread) and therefore drops the rest unrun.
        let caught = std::panic::catch_unwind(|| {
            let (tx, rx) = std::sync::mpsc::channel::<Box<dyn FnOnce() + Send>>();
            let worker = std::thread::spawn(move || {
                for job in rx {
                    job();
                }
            });
            let jobs: Vec<Box<dyn FnOnce() + Send>> =
                vec![Box::new(|| panic!("job exploded")), Box::new(|| {})];
            thread::run_scoped(jobs, &mut |job| {
                let _ = tx.send(job);
            });
            worker.join().unwrap();
        });
        std::panic::set_hook(prev);
        assert!(caught.is_err(), "failed jobs must surface as a panic");
    }

    #[test]
    fn run_scoped_blocks_until_a_dawdling_executor_finishes_borrowed_jobs() {
        // Regression for the lifetime-erasure contract: the executor
        // queues every job and only starts running them *after* a delay,
        // long after `run_scoped`'s loop has finished submitting. If
        // `run_scoped` returned before the last wrapper settled, the
        // borrow of `data` would end while a job still held an erased
        // `'static` alias to it — by construction that must be
        // impossible, i.e. every write below must be visible the moment
        // `run_scoped` returns.
        let mut data = vec![0usize; 32];
        {
            let (tx, rx) = std::sync::mpsc::channel::<Box<dyn FnOnce() + Send>>();
            let worker = std::thread::spawn(move || {
                // Collect all four jobs first: none runs until run_scoped
                // is already blocked in wait_idle.
                let queued: Vec<_> = (0..4).map(|_| rx.recv().expect("4 jobs")).collect();
                std::thread::sleep(std::time::Duration::from_millis(50));
                for job in queued {
                    job();
                }
            });
            let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = data
                .chunks_mut(8)
                .enumerate()
                .map(|(c, chunk)| {
                    Box::new(move || {
                        for (i, v) in chunk.iter_mut().enumerate() {
                            *v = c * 8 + i + 1;
                        }
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            thread::run_scoped(jobs, &mut |job| tx.send(job).expect("worker alive"));
            drop(tx);
            worker.join().unwrap();
        }
        // Every borrowed chunk was written before run_scoped returned.
        assert_eq!(data, (1..=32).collect::<Vec<_>>());
    }

    #[test]
    fn run_scoped_with_local_runs_caller_span_on_calling_thread() {
        let mut data = vec![0usize; 48];
        let caller_tid = std::thread::current().id();
        {
            let (first, second) = data.split_at_mut(16);
            let (second, third) = second.split_at_mut(16);
            let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = vec![
                Box::new(|| first.iter_mut().enumerate().for_each(|(i, v)| *v = i + 1)),
                Box::new(|| second.iter_mut().enumerate().for_each(|(i, v)| *v = 17 + i)),
            ];
            let (tx, rx) = std::sync::mpsc::channel::<Box<dyn FnOnce() + Send>>();
            let worker = std::thread::spawn(move || {
                for job in rx {
                    job();
                }
            });
            thread::run_scoped_with_local(
                jobs,
                &mut |job| tx.send(job).expect("worker alive"),
                || {
                    // The local span really runs on the calling thread.
                    assert_eq!(std::thread::current().id(), caller_tid);
                    third.iter_mut().enumerate().for_each(|(i, v)| *v = 33 + i);
                },
            );
            drop(tx);
            worker.join().unwrap();
        }
        // Jobs and the caller span all finished before the call returned.
        assert_eq!(data, (1..=48).collect::<Vec<_>>());
    }

    #[test]
    fn run_scoped_with_local_drains_jobs_when_local_panics() {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let mut data = vec![0usize; 8];
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let (tx, rx) = std::sync::mpsc::channel::<Box<dyn FnOnce() + Send>>();
            let worker = std::thread::spawn(move || {
                for job in rx {
                    std::thread::sleep(std::time::Duration::from_millis(20));
                    job();
                }
            });
            let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = vec![Box::new(|| {
                data.iter_mut().enumerate().for_each(|(i, v)| *v = i + 1);
            })];
            thread::run_scoped_with_local(
                jobs,
                &mut |job| tx.send(job).expect("worker alive"),
                || panic!("local span failed"),
            );
            drop(tx);
            worker.join().unwrap();
        }));
        std::panic::set_hook(prev);
        assert!(caught.is_err(), "local panic must propagate");
        // The borrowed job still completed before the unwind escaped —
        // the drain guard held the frame alive until it settled.
        assert_eq!(data, (1..=8).collect::<Vec<_>>());
    }

    #[test]
    fn nested_spawn_works() {
        let n = thread::scope(|s| {
            s.spawn(|inner| inner.spawn(|_| 7).join().unwrap())
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(n, 7);
    }
}
