//! The synchronisation facade the shim's own concurrency (and the
//! `slpm_check` harnesses) are written against.
//!
//! Without the `model` feature every name here is a zero-cost re-export
//! of the `std::sync` / `std::thread` primitive — production builds pay
//! nothing. With the feature enabled the same names resolve to
//! *dual-mode* types: constructed inside a [`crate::model`] exploration
//! session they report every operation to the deterministic scheduler
//! (so the model checker can enumerate interleavings); constructed
//! anywhere else they delegate straight to the real primitive. Code
//! written against this module therefore runs unchanged in production,
//! under plain tests, and under exhaustive schedule exploration.

#[cfg(not(feature = "model"))]
pub use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Atomics facade (std re-export without the `model` feature).
#[cfg(not(feature = "model"))]
pub mod atomic {
    pub use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
}

/// Thread facade (std re-export without the `model` feature).
#[cfg(not(feature = "model"))]
pub mod thread {
    pub use std::thread::{spawn, yield_now, JoinHandle, Result};
}

#[cfg(feature = "model")]
pub use instrumented::{atomic, thread, Condvar, Mutex, MutexGuard};

#[cfg(feature = "model")]
pub use std::sync::Arc;

/// Dual-mode primitives: model-instrumented inside an exploration
/// session, plain `std` everywhere else (see the module docs).
#[cfg(feature = "model")]
mod instrumented {
    use crate::model::{self, Session, Tid};
    use std::cell::UnsafeCell;
    use std::mem::ManuallyDrop;
    use std::ops::{Deref, DerefMut};
    use std::sync::{
        Arc as StdArc, Condvar as StdCondvar, LockResult, Mutex as StdMutex,
        MutexGuard as StdMutexGuard, PoisonError,
    };

    /// The current thread's session, or `None` outside the model.
    fn ctx() -> Option<(StdArc<Session>, Tid)> {
        model::current_session()
    }

    /// The session context, asserting the caller really is a model
    /// thread of `sess` (mixing sessions or escaping one is a harness
    /// bug worth failing loudly on).
    fn ctx_of(sess: &StdArc<Session>) -> Tid {
        let (cur, me) = ctx().expect(
            "model-mode primitive used from outside its exploration session \
             (create sync objects inside the explored closure)",
        );
        assert!(
            StdArc::ptr_eq(&cur, sess),
            "model-mode primitive used from a different exploration session"
        );
        me
    }

    /// Dual-mode mutual exclusion: `std::sync::Mutex` outside a model
    /// session, a scheduler-visible virtual mutex inside one.
    pub struct Mutex<T> {
        imp: MutexImp<T>,
    }

    enum MutexImp<T> {
        Real(StdMutex<T>),
        Model {
            sess: StdArc<Session>,
            id: usize,
            cell: UnsafeCell<T>,
        },
    }

    // SAFETY: the Real variant is std's Mutex (Send/Sync iff T: Send).
    // The Model variant's UnsafeCell is only dereferenced through a
    // guard obtained via the model scheduler's lock protocol, which
    // grants ownership to exactly one model thread at a time — and the
    // scheduler additionally serialises model threads (one runs at a
    // time, handoffs synchronise through real mutexes/condvars), so
    // accesses are both exclusive and properly ordered. Mirroring std,
    // we require T: Send only.
    unsafe impl<T: Send> Send for Mutex<T> {}
    // SAFETY: see the Send impl above — exclusive, scheduler-ordered
    // access makes sharing the handle across threads sound.
    unsafe impl<T: Send> Sync for Mutex<T> {}

    impl<T> Mutex<T> {
        /// Create the mutex — model-instrumented when the calling thread
        /// is inside an exploration session.
        pub fn new(value: T) -> Mutex<T> {
            match ctx() {
                Some((sess, _)) => {
                    let id = model::register_mutex(&sess);
                    Mutex {
                        imp: MutexImp::Model {
                            sess,
                            id,
                            cell: UnsafeCell::new(value),
                        },
                    }
                }
                None => Mutex {
                    imp: MutexImp::Real(StdMutex::new(value)),
                },
            }
        }

        /// Acquire the lock (a scheduling point under the model). Model
        /// mode never poisons, so the result is always `Ok` there.
        pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
            match &self.imp {
                MutexImp::Real(m) => match m.lock() {
                    Ok(g) => Ok(MutexGuard {
                        imp: ManuallyDrop::new(GuardImp::Real(g)),
                    }),
                    Err(poison) => Err(PoisonError::new(MutexGuard {
                        imp: ManuallyDrop::new(GuardImp::Real(poison.into_inner())),
                    })),
                },
                MutexImp::Model { sess, id, .. } => {
                    let me = ctx_of(sess);
                    model::mutex_lock(sess, me, *id);
                    Ok(MutexGuard {
                        imp: ManuallyDrop::new(GuardImp::Model {
                            mutex: self,
                            sess: StdArc::clone(sess),
                            me,
                        }),
                    })
                }
            }
        }
    }

    enum GuardImp<'a, T> {
        Real(StdMutexGuard<'a, T>),
        Model {
            mutex: &'a Mutex<T>,
            sess: StdArc<Session>,
            me: Tid,
        },
    }

    /// RAII lock guard of the dual-mode [`Mutex`] (API-compatible with
    /// `std::sync::MutexGuard` as far as the tree uses it).
    pub struct MutexGuard<'a, T> {
        /// `ManuallyDrop` so [`Condvar::wait`] can take the variant out
        /// and release the lock through the condvar protocol instead of
        /// the plain-unlock path in `Drop`.
        imp: ManuallyDrop<GuardImp<'a, T>>,
    }

    impl<'a, T> MutexGuard<'a, T> {
        /// Consume the guard *without* running its unlock `Drop`,
        /// returning the raw variant (used by [`Condvar::wait`]).
        fn dismantle(self) -> GuardImp<'a, T> {
            let mut this = ManuallyDrop::new(self);
            // SAFETY: `this` is never dropped (ManuallyDrop) and `imp`
            // is read exactly once here, so no double-drop or use of a
            // moved-out field can occur.
            unsafe { ManuallyDrop::take(&mut this.imp) }
        }
    }

    impl<T> Deref for MutexGuard<'_, T> {
        type Target = T;

        fn deref(&self) -> &T {
            match &*self.imp {
                GuardImp::Real(g) => g,
                GuardImp::Model { mutex, .. } => match &mutex.imp {
                    // SAFETY: this guard proves the model scheduler
                    // granted the calling thread exclusive ownership of
                    // the virtual mutex; no other reference to the cell
                    // exists until the guard drops.
                    MutexImp::Model { cell, .. } => unsafe { &*cell.get() },
                    MutexImp::Real(_) => unreachable!("model guard on a real mutex"),
                },
            }
        }
    }

    impl<T> DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            match &mut *self.imp {
                GuardImp::Real(g) => g,
                GuardImp::Model { mutex, .. } => match &mutex.imp {
                    // SAFETY: as in `Deref` — the guard is the unique
                    // licence to the cell while it lives.
                    MutexImp::Model { cell, .. } => unsafe { &mut *cell.get() },
                    MutexImp::Real(_) => unreachable!("model guard on a real mutex"),
                },
            }
        }
    }

    impl<T> Drop for MutexGuard<'_, T> {
        fn drop(&mut self) {
            // SAFETY: `imp` is taken exactly once; after this the guard
            // is inert (Drop runs once, and `dismantle` never lets the
            // guard reach Drop).
            let imp = unsafe { ManuallyDrop::take(&mut self.imp) };
            match imp {
                GuardImp::Real(g) => drop(g),
                GuardImp::Model { mutex, sess, me } => match &mutex.imp {
                    MutexImp::Model { id, .. } => model::mutex_unlock(&sess, me, *id),
                    MutexImp::Real(_) => unreachable!("model guard on a real mutex"),
                },
            }
        }
    }

    /// Dual-mode condition variable (see [`Mutex`]).
    pub struct Condvar {
        imp: CondvarImp,
    }

    enum CondvarImp {
        Real(StdCondvar),
        Model { sess: StdArc<Session>, id: usize },
    }

    impl Condvar {
        /// Create the condvar — model-instrumented inside a session.
        pub fn new() -> Condvar {
            match ctx() {
                Some((sess, _)) => {
                    let id = model::register_condvar(&sess);
                    Condvar {
                        imp: CondvarImp::Model { sess, id },
                    }
                }
                None => Condvar {
                    imp: CondvarImp::Real(StdCondvar::new()),
                },
            }
        }

        /// Release the guard's lock, wait to be notified, re-acquire.
        /// Model mode explores every legal wake/acquire ordering and
        /// never wakes spuriously.
        pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
            match (&self.imp, guard.dismantle()) {
                (CondvarImp::Real(cv), GuardImp::Real(g)) => match cv.wait(g) {
                    Ok(g) => Ok(MutexGuard {
                        imp: ManuallyDrop::new(GuardImp::Real(g)),
                    }),
                    Err(poison) => Err(PoisonError::new(MutexGuard {
                        imp: ManuallyDrop::new(GuardImp::Real(poison.into_inner())),
                    })),
                },
                (CondvarImp::Model { sess, id }, GuardImp::Model { mutex, me, .. }) => {
                    match &mutex.imp {
                        MutexImp::Model { id: mid, .. } => {
                            model::condvar_wait(sess, me, *id, *mid);
                            Ok(MutexGuard {
                                imp: ManuallyDrop::new(GuardImp::Model {
                                    mutex,
                                    sess: StdArc::clone(sess),
                                    me,
                                }),
                            })
                        }
                        MutexImp::Real(_) => unreachable!("model guard on a real mutex"),
                    }
                }
                _ => panic!("condvar and mutex guard are from different modes/sessions"),
            }
        }

        /// Wake one waiter (the longest-waiting, under the model).
        pub fn notify_one(&self) {
            match &self.imp {
                CondvarImp::Real(cv) => cv.notify_one(),
                CondvarImp::Model { sess, id } => {
                    let me = ctx_of(sess);
                    model::condvar_notify(sess, me, *id, false);
                }
            }
        }

        /// Wake every waiter.
        pub fn notify_all(&self) {
            match &self.imp {
                CondvarImp::Real(cv) => cv.notify_all(),
                CondvarImp::Model { sess, id } => {
                    let me = ctx_of(sess);
                    model::condvar_notify(sess, me, *id, true);
                }
            }
        }
    }

    impl Default for Condvar {
        fn default() -> Condvar {
            Condvar::new()
        }
    }

    /// Dual-mode atomics: sequentially consistent scheduler-visible
    /// steps inside a session, std atomics outside.
    pub mod atomic {
        pub use std::sync::atomic::Ordering;

        use super::{ctx, ctx_of};
        use crate::model::{self, Session};
        use std::sync::atomic::{AtomicBool as StdAtomicBool, AtomicUsize as StdAtomicUsize};
        use std::sync::{Arc as StdArc, Mutex as StdMutex};

        macro_rules! dual_atomic {
            ($name:ident, $std:ident, $ty:ty) => {
                /// Dual-mode atomic (model steps are sequentially
                /// consistent regardless of the requested ordering).
                pub struct $name {
                    imp: AtomicImp<$std, $ty>,
                }

                impl $name {
                    /// Create the atomic — model-instrumented inside a
                    /// session.
                    pub fn new(value: $ty) -> $name {
                        match ctx() {
                            Some((sess, _)) => $name {
                                imp: AtomicImp::Model {
                                    sess,
                                    cell: StdMutex::new(value),
                                },
                            },
                            None => $name {
                                imp: AtomicImp::Real($std::new(value)),
                            },
                        }
                    }

                    /// Atomic read (a scheduling point under the model).
                    pub fn load(&self, order: Ordering) -> $ty {
                        match &self.imp {
                            AtomicImp::Real(a) => a.load(order),
                            AtomicImp::Model { sess, cell } => {
                                let me = ctx_of(sess);
                                model::atomic_step(sess, me, || {
                                    *cell.lock().expect("model atomic cell")
                                })
                            }
                        }
                    }

                    /// Atomic write (a scheduling point under the model).
                    pub fn store(&self, value: $ty, order: Ordering) {
                        match &self.imp {
                            AtomicImp::Real(a) => a.store(value, order),
                            AtomicImp::Model { sess, cell } => {
                                let me = ctx_of(sess);
                                model::atomic_step(sess, me, || {
                                    *cell.lock().expect("model atomic cell") = value;
                                })
                            }
                        }
                    }

                    /// Atomic swap (a scheduling point under the model).
                    pub fn swap(&self, value: $ty, order: Ordering) -> $ty {
                        match &self.imp {
                            AtomicImp::Real(a) => a.swap(value, order),
                            AtomicImp::Model { sess, cell } => {
                                let me = ctx_of(sess);
                                model::atomic_step(sess, me, || {
                                    let mut cell = cell.lock().expect("model atomic cell");
                                    std::mem::replace(&mut *cell, value)
                                })
                            }
                        }
                    }
                }
            };
        }

        enum AtomicImp<A, T> {
            Real(A),
            Model {
                sess: StdArc<Session>,
                cell: StdMutex<T>,
            },
        }

        dual_atomic!(AtomicUsize, StdAtomicUsize, usize);
        dual_atomic!(AtomicBool, StdAtomicBool, bool);

        impl AtomicUsize {
            /// Atomic add, returning the previous value (a scheduling
            /// point under the model).
            pub fn fetch_add(&self, value: usize, order: Ordering) -> usize {
                match &self.imp {
                    AtomicImp::Real(a) => a.fetch_add(value, order),
                    AtomicImp::Model { sess, cell } => {
                        let me = ctx_of(sess);
                        model::atomic_step(sess, me, || {
                            let mut cell = cell.lock().expect("model atomic cell");
                            let old = *cell;
                            *cell = old.wrapping_add(value);
                            old
                        })
                    }
                }
            }

            /// Atomic subtract, returning the previous value (a
            /// scheduling point under the model).
            pub fn fetch_sub(&self, value: usize, order: Ordering) -> usize {
                match &self.imp {
                    AtomicImp::Real(a) => a.fetch_sub(value, order),
                    AtomicImp::Model { sess, cell } => {
                        let me = ctx_of(sess);
                        model::atomic_step(sess, me, || {
                            let mut cell = cell.lock().expect("model atomic cell");
                            let old = *cell;
                            *cell = old.wrapping_sub(value);
                            old
                        })
                    }
                }
            }
        }
    }

    /// Dual-mode thread spawning: model threads inside a session, real
    /// OS threads outside.
    pub mod thread {
        use super::ctx;
        use crate::model::{self, Session, Tid};
        use std::sync::{Arc as StdArc, Mutex as StdMutex};

        pub use std::thread::Result;

        /// Dual-mode join handle.
        pub struct JoinHandle<T> {
            imp: JoinImp<T>,
        }

        enum JoinImp<T> {
            Real(std::thread::JoinHandle<T>),
            Model {
                sess: StdArc<Session>,
                target: Tid,
                result: StdArc<StdMutex<Option<Result<T>>>>,
            },
        }

        impl<T> JoinHandle<T> {
            pub(crate) fn model(
                sess: StdArc<Session>,
                target: Tid,
                result: StdArc<StdMutex<Option<Result<T>>>>,
            ) -> JoinHandle<T> {
                JoinHandle {
                    imp: JoinImp::Model {
                        sess,
                        target,
                        result,
                    },
                }
            }

            /// Wait for the thread to finish; a model join is a
            /// scheduling point (and a deadlock-detection edge).
            pub fn join(self) -> Result<T>
            where
                T: Send + 'static,
            {
                match self.imp {
                    JoinImp::Real(h) => h.join(),
                    JoinImp::Model {
                        sess,
                        target,
                        result,
                    } => {
                        let (cur, me) = model::current_session()
                            .expect("model join handle used from outside its exploration session");
                        assert!(
                            StdArc::ptr_eq(&cur, &sess),
                            "model join handle used from a different session"
                        );
                        model::join_model(&sess, me, target, &result)
                    }
                }
            }
        }

        /// Spawn a thread — a schedulable model thread inside a
        /// session, a plain `std::thread` outside.
        pub fn spawn<F, T>(f: F) -> JoinHandle<T>
        where
            F: FnOnce() -> T + Send + 'static,
            T: Send + 'static,
        {
            match ctx() {
                Some((sess, me)) => model::spawn_model(&sess, me, None, f),
                None => JoinHandle {
                    imp: JoinImp::Real(std::thread::spawn(f)),
                },
            }
        }

        /// Yield: a pure scheduling point under the model.
        pub fn yield_now() {
            match ctx() {
                Some((sess, me)) => model::yield_point(&sess, me),
                None => std::thread::yield_now(),
            }
        }
    }
}
