//! Offline stand-in for the `serde` facade crate.
//!
//! Mirrors the real crate's shape — a `Serialize` name that is both a trait
//! and a derive macro — so `use serde::Serialize;` plus
//! `#[derive(Serialize)]` compile unchanged. The traits are markers only;
//! in-tree output goes through hand-written CSV/table renderers, so no
//! serializer exists here. Swap in the real crates.io `serde` to get one.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de> {}
