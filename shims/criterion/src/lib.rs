//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Benches are written against Criterion's API (`criterion_group!` /
//! `criterion_main!`, `Criterion::benchmark_group`, `Bencher::iter`,
//! `BenchmarkId`, `black_box`) and run under `cargo bench` with
//! `harness = false`. This shim keeps that API and measures wall-clock
//! time with a simple calibrated loop: warm up briefly, pick an iteration
//! count that fills the measurement window, then report mean ns/iter over
//! `sample_size` samples. No statistics, plots, or saved baselines — swap
//! in the real crates.io `criterion` for those.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity, mirroring `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Measurement settings shared by [`Criterion`] and [`BenchmarkGroup`].
#[derive(Clone, Debug)]
struct Settings {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            sample_size: 20,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
        }
    }
}

/// The top-level bench context handed to `criterion_group!` targets.
#[derive(Default)]
pub struct Criterion {
    settings: Settings,
}

impl Criterion {
    /// Benchmark a closure under `id`.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(id, &self.settings, f);
        self
    }

    /// Open a named group of related benchmarks. The group starts from the
    /// `Criterion`-level settings and can override them per group.
    pub fn benchmark_group(&mut self, group_name: &str) -> BenchmarkGroup<'_> {
        let settings = self.settings.clone();
        BenchmarkGroup {
            _criterion: self,
            name: group_name.to_string(),
            settings,
        }
    }
}

/// A named group of benchmarks with its own measurement settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    settings: Settings,
}

impl<'a> BenchmarkGroup<'a> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n;
        self
    }

    /// How long to warm up before timing.
    pub fn warm_up_time(&mut self, dur: Duration) -> &mut Self {
        self.settings.warm_up_time = dur;
        self
    }

    /// Target total measurement time.
    pub fn measurement_time(&mut self, dur: Duration) -> &mut Self {
        self.settings.measurement_time = dur;
        self
    }

    /// Benchmark a closure under `id` within this group.
    pub fn bench_function<F, I>(&mut self, id: I, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
        I: IntoBenchmarkId,
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        run_benchmark(&full, &self.settings, f);
        self
    }

    /// Benchmark a closure that receives `input` by reference.
    pub fn bench_with_input<F, I, N>(&mut self, id: N, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
        I: ?Sized,
        N: IntoBenchmarkId,
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        run_benchmark(&full, &self.settings, |b| f(b, input));
        self
    }

    /// Finish the group (a no-op here; kept for API parity).
    pub fn finish(self) {}
}

/// A benchmark identifier: either a bare string or `BenchmarkId::new`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A two-part id `function_name/parameter`.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id from the parameter alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Conversion of the various id forms benches pass to `bench_function`.
pub trait IntoBenchmarkId {
    /// Render the id.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Passed to the bench closure; `iter` does the actual timing.
pub struct Bencher<'a> {
    settings: &'a Settings,
    /// (total elapsed, total iterations) accumulated by `iter`.
    result: Option<(Duration, u64)>,
}

impl<'a> Bencher<'a> {
    /// Time `routine`, running it enough times to fill the measurement
    /// window.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up: also calibrates how many iterations fit in the window.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        loop {
            black_box(routine());
            warm_iters += 1;
            if warm_start.elapsed() >= self.settings.warm_up_time {
                break;
            }
        }
        // Floor at 1ns/iter: a zero elapsed reading (coarse clocks) would
        // otherwise make budget/per_iter infinite and the cast below
        // saturate to u64::MAX, hanging the measurement loop.
        let per_iter = (warm_start.elapsed().as_secs_f64() / warm_iters as f64).max(1e-9);
        let budget = self.settings.measurement_time.as_secs_f64();
        let samples = self.settings.sample_size.max(1) as u64;
        let iters_per_sample = ((budget / per_iter / samples as f64) as u64).max(1);

        let mut total = Duration::ZERO;
        let mut total_iters = 0u64;
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            total += start.elapsed();
            total_iters += iters_per_sample;
        }
        self.result = Some((total, total_iters));
    }
}

fn run_benchmark<F>(id: &str, settings: &Settings, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        settings,
        result: None,
    };
    f(&mut bencher);
    match bencher.result {
        Some((total, iters)) if iters > 0 => {
            let ns = total.as_nanos() as f64 / iters as f64;
            println!("{id:<50} {:>14} ns/iter ({iters} iters)", format_ns(ns));
        }
        _ => println!("{id:<50} (no measurement: bencher.iter was not called)"),
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3}e9", ns / 1e9)
    } else if ns >= 1_000_000.0 {
        format!("{:.1}M", ns / 1e6)
    } else if ns >= 1_000.0 {
        format!("{:.1}k", ns / 1e3)
    } else {
        format!("{ns:.1}")
    }
}

/// Mirror of `criterion_group!`: defines a function running each target.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Mirror of `criterion_main!`: defines `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(2);
        g.warm_up_time(Duration::from_millis(1));
        g.measurement_time(Duration::from_millis(5));
        let mut ran = false;
        g.bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        g.finish();
        assert!(ran);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 32).into_benchmark_id(), "f/32");
        assert_eq!(BenchmarkId::from_parameter("x").into_benchmark_id(), "x");
    }
}
