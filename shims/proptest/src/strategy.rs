//! The [`Strategy`] trait and combinators (no shrinking).

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type, mirroring
/// `proptest::strategy::Strategy` minus shrinking.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform every generated value with `f`.
    fn prop_map<F, U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { source: self, f }
    }

    /// Generate a value, then generate from the strategy `f` builds on it.
    fn prop_flat_map<F, S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> S,
        S: Strategy,
    {
        FlatMap { source: self, f }
    }

    /// Keep only values satisfying `pred`; panics (with `whence`) if no
    /// accepted value is found in a reasonable number of tries.
    fn prop_filter<P>(self, whence: &'static str, pred: P) -> Filter<Self, P>
    where
        Self: Sized,
        P: Fn(&Self::Value) -> bool,
    {
        Filter {
            source: self,
            whence,
            pred,
        }
    }

    /// Type-erase the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of one value: `Just(v)`.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Copy, Debug)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone, Copy, Debug)]
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> S2,
    S2: Strategy,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone, Copy, Debug)]
pub struct Filter<S, P> {
    source: S,
    whence: &'static str,
    pred: P,
}

impl<S, P> Strategy for Filter<S, P>
where
    S: Strategy,
    P: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        // Generous retry cap: predicates in practice accept most inputs.
        for _ in 0..10_000 {
            let v = self.source.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter({:?}) rejected 10000 consecutive inputs",
            self.whence
        );
    }
}

/// Uniform choice among same-valued strategies (built by `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from the (non-empty) list of alternatives.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(
            !options.is_empty(),
            "prop_oneof! needs at least one alternative"
        );
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let ix = rng.usize_in(0, self.options.len() - 1);
        self.options[ix].generate(rng)
    }
}

// Range strategies delegate to the `rand` shim's `SampleRange`
// implementations (one shared copy of the uniform-sampling numerics,
// including the float end-exclusive rounding guard).
macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.sample(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.sample(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy!(
    (A, B),
    (A, B, C),
    (A, B, C, D),
    (A, B, C, D, E),
    (A, B, C, D, E, F)
);
