//! Test configuration and the deterministic RNG behind the shim.

use rand::rngs::StdRng;
use rand::{RngCore, SampleRange, SeedableRng};

/// Per-`proptest!` settings, mirroring `proptest::test_runner::ProptestConfig`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test function.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real crate defaults to 256; the shim halves that to keep the
        // exhaustive-check-heavy suites in this tree fast.
        ProptestConfig { cases: 128 }
    }
}

/// Deterministic generator handed to strategies. Seeded from the test's
/// name so each test gets an independent, reproducible stream. All actual
/// sampling delegates to the `rand` shim so the two never diverge.
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// RNG for the named test (FNV-1a of the name as seed).
    pub fn for_test(name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(hash),
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform sample from an integer or float range, via the `rand`
    /// shim's [`SampleRange`] implementations.
    pub fn sample<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(&mut self.inner)
    }

    /// Uniform `usize` in `[min, max]` (inclusive).
    pub fn usize_in(&mut self, min: usize, max: usize) -> usize {
        debug_assert!(min <= max);
        self.sample(min..=max)
    }
}
