//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset the repository's property tests use: the
//! [`Strategy`](strategy::Strategy) trait over ranges, tuples and `Just`;
//! the `prop_map` / `prop_flat_map` / `prop_filter` combinators;
//! `collection::vec`; `prop_oneof!`; and the `proptest!` /
//! `prop_assert!` / `prop_assert_eq!` macros. Values are generated from a
//! deterministic seeded RNG so failures reproduce run-to-run.
//!
//! Deliberately missing versus the real crate: shrinking (a failing case
//! is reported as-is, not minimised), persisted failure files, and the
//! `any::<T>()` arbitrary machinery. Swap in crates.io `proptest` to get
//! those back; the test sources need no changes.

pub mod strategy;
pub mod test_runner;

/// Strategies over collections, mirroring `proptest::collection`.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on generated collection sizes.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.usize_in(self.size.min, self.size.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `proptest::collection::vec`: a strategy for vectors whose length is
    /// drawn from `size` and whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// One-stop imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Union of same-valued strategies: `prop_oneof![a, b, c]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Assertion inside `proptest!` bodies. The shim has no failure-value
/// machinery, so this is `assert!` with the same signature.
#[macro_export]
macro_rules! prop_assert {
    ($($arg:tt)*) => { assert!($($arg)*) };
}

/// Equality assertion inside `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($arg:tt)*) => { assert_eq!($($arg)*) };
}

/// Inequality assertion inside `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($arg:tt)*) => { assert_ne!($($arg)*) };
}

/// The test-defining macro. Accepts the real crate's common form:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///
///     #[test]
///     fn my_property((a, b) in my_strategy(), n in 0usize..10) { ... }
/// }
/// ```
///
/// Each function becomes a `#[test]` that draws `cases` inputs from the
/// strategies and runs the body on each.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@expand ($config) $($rest)*);
    };
    (@expand ($config:expr)
        $(
            $(#[$meta:meta])+
            fn $name:ident ( $($pat:pat in $strategy:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for case in 0..config.cases {
                    let _ = case;
                    $(let $pat = $crate::strategy::Strategy::generate(&($strategy), &mut rng);)+
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@expand ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (usize, usize)> {
        (1usize..=8, 1usize..=8).prop_filter("distinct", |&(a, b)| a != b)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(n in 3usize..10, f in -1.0f64..1.0) {
            prop_assert!((3..10).contains(&n));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn filter_holds((a, b) in pair()) {
            prop_assert_ne!(a, b);
        }

        #[test]
        fn vec_sizes(v in crate::collection::vec(0u64..5, 2..=4)) {
            prop_assert!(v.len() >= 2 && v.len() <= 4);
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn oneof_and_just(x in prop_oneof![Just(1usize), Just(2), Just(3)]) {
            prop_assert!((1..=3).contains(&x));
        }

        #[test]
        fn map_and_flat_map(v in (2usize..=5).prop_flat_map(|n| {
            crate::collection::vec(0usize..10, n).prop_map(move |v| (n, v))
        })) {
            let (n, v) = v;
            prop_assert_eq!(v.len(), n);
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::TestRng::for_test("t");
        let mut b = crate::test_runner::TestRng::for_test("t");
        let s = 0usize..1000;
        for _ in 0..50 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }
}
