//! Offline stand-in for the `bytes` crate.
//!
//! Provides the `Bytes` / `BytesMut` surface the page store uses: zeroed
//! mutable buffers, freeze into a cheaply clonable shared buffer, and
//! zero-copy sub-slicing. Backed by `Arc<[u8]>` + (start, end) offsets,
//! which preserves the real crate's O(1) `clone`/`slice` behaviour.

use std::ops::{Bound, Deref, DerefMut, RangeBounds};
use std::sync::Arc;

/// An immutable, cheaply clonable byte buffer (shared via `Arc`).
#[derive(Clone, Debug)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::from(Vec::new())
    }

    /// Length of the view in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A sub-view of this buffer sharing the same backing allocation.
    /// Panics when the range is out of bounds, as the real crate does.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(
            lo <= hi && hi <= self.len(),
            "slice {lo}..{hi} out of bounds of {}",
            self.len()
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let data: Arc<[u8]> = v.into();
        let end = data.len();
        Bytes {
            data,
            start: 0,
            end,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

/// A mutable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Debug, Default)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut { buf: Vec::new() }
    }

    /// A buffer of `len` zero bytes.
    pub fn zeroed(len: usize) -> Self {
        BytesMut {
            buf: vec![0u8; len],
        }
    }

    /// Buffer length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append bytes to the buffer.
    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.buf.extend_from_slice(extend);
    }

    /// Convert into an immutable shared [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

impl AsMut<[u8]> for BytesMut {
    fn as_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}
