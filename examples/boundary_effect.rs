//! The Figure 1 story: why fractals disappoint at quadrant boundaries.
//!
//! Walks the exact scenario of the paper's Figure 1 — two points that are
//! Manhattan-distance-1 apart but fall in different quadrants — for every
//! fractal curve, then shows what Spectral LPM does with the same points.
//!
//! Run with: `cargo run --release --example boundary_effect`

use slpm_querysim::experiments::fig1;
use slpm_querysim::mappings::MappingSet;
use slpm_querysim::workloads;
use spectral_lpm_repro::prelude::*;

fn main() {
    // The paper's drawing is a space split into four quadrants; take the
    // 8×8 grid so each quadrant is 4×4.
    let side = 8usize;
    let spec = GridSpec::cube(side, 2);
    let set = MappingSet::paper_set(&spec).expect("8 is a power of two");

    println!("Cross-quadrant adjacent pairs on the {side}x{side} grid, per mapping:\n");
    for (label, order) in set.iter() {
        // Find the worst adjacent pair that crosses a quadrant boundary.
        let mut worst = 0usize;
        let mut pair = None;
        workloads::for_each_pair_at_distance(&spec, 1, |i, j| {
            let a = spec.coords_of(i);
            let b = spec.coords_of(j);
            let crosses =
                (a[0] < side / 2) != (b[0] < side / 2) || (a[1] < side / 2) != (b[1] < side / 2);
            if crosses {
                let d = order.distance(i, j);
                if d > worst {
                    worst = d;
                    pair = Some((a.clone(), b.clone()));
                }
            }
        });
        let (a, b) = pair.expect("grid has cross-quadrant pairs");
        println!(
            "  {label:>8}: P1 = {a:?}, P2 = {b:?} are neighbours, yet land {worst} apart in 1-D"
        );
    }

    println!("\nFull Figure-1 table (worst adjacent stretch anywhere on the grid):\n");
    println!("{}", fig1::run(side).render());
    println!(
        "The fractals exhaust one quadrant before entering the next (a local\n\
         optimisation), so boundary neighbours pay the full quadrant detour.\n\
         Spectral LPM optimises over all points at once and keeps every\n\
         neighbour pair close."
    );
}
