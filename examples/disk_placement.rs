//! Disk placement for a synthetic GIS workload — the paper's motivating
//! application (Section 1).
//!
//! A city's points of interest cluster around a few hot spots. We place the
//! records on disk pages in three different linear orders (Sweep, Hilbert,
//! Spectral LPM), then run the same set of map-window (range) queries
//! against a simulated page store and compare real I/O: pages read, seeks,
//! and modelled latency.
//!
//! Run with: `cargo run --release --example disk_placement`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use slpm_querysim::mappings::curve_order;
use slpm_querysim::workloads::RangeBox;
use slpm_storage::store::PageStore;
use slpm_storage::{IoModel, PageLayout, PageMapper};
use spectral_lpm_repro::prelude::*;

fn main() {
    let side = 16usize;
    let spec = GridSpec::cube(side, 2);
    let n = spec.num_points();

    // Three placements of the same record set.
    let sweep = SweepCurve::new(&[side as u64, side as u64]).unwrap();
    let hilbert = HilbertCurve::from_side(2, side as u64).unwrap();
    let spectral = SpectralMapper::new(SpectralConfig::default())
        .map_grid(&spec)
        .expect("grid connected")
        .order;
    let orders: Vec<(&str, spectral_lpm::LinearOrder)> = vec![
        ("Sweep", curve_order(&spec, &sweep)),
        ("Hilbert", curve_order(&spec, &hilbert)),
        ("Spectral", spectral),
    ];

    // A seeded workload of map-window queries biased to a hot spot — the
    // "downtown" of our synthetic city.
    let mut rng = StdRng::seed_from_u64(2003);
    let mut queries: Vec<RangeBox> = Vec::new();
    for _ in 0..64 {
        let w = rng.gen_range(2usize..=5);
        let h = rng.gen_range(2usize..=5);
        // Bias the window towards the hot spot at (4, 4).
        let cx = (rng.gen_range(0..side - w) + 4) / 2;
        let cy = (rng.gen_range(0..side - h) + 4) / 2;
        queries.push(RangeBox {
            lo: vec![cx, cy],
            hi: vec![cx + w - 1, cy + h - 1],
        });
    }

    let layout = PageLayout::new(8);
    let model = IoModel::default();
    println!(
        "Disk placement of a {side}x{side} point grid, {} records, {} records/page\n",
        n, layout.records_per_page
    );

    // Workload 1: map-window (range) queries.
    println!(
        "Workload 1 — {} map-window queries (2..5 cells a side):",
        queries.len()
    );
    println!(
        "{:>10}  {:>11}  {:>9}  {:>12}  {:>12}",
        "placement", "pages read", "seeks", "model cost", "store reads"
    );
    for (name, order) in &orders {
        let mapper = PageMapper::new(order, layout);
        let store = PageStore::build(&mapper, n, 64);
        let mut pages = 0usize;
        let mut seeks = 0usize;
        let mut cost = 0.0f64;
        for q in &queries {
            let vertices: Vec<usize> = q.indices(&spec).collect();
            let io = model.query_cost(&mapper, vertices.iter().copied());
            pages += io.pages;
            seeks += io.runs;
            cost += io.total;
            store.serve_query(vertices.iter().copied());
        }
        println!(
            "{:>10}  {:>11}  {:>9}  {:>12.1}  {:>12}",
            name,
            pages,
            seeks,
            cost,
            store.total_reads()
        );
    }

    // Workload 2: nearest-neighbour probes — fetch each point together with
    // its 4 grid neighbours (the access pattern of a spatial-join or kNN
    // expansion step).
    println!("\nWorkload 2 — neighbour probes (each point + its 4-neighbours):");
    println!(
        "{:>10}  {:>11}  {:>9}  {:>12}",
        "placement", "pages read", "seeks", "model cost"
    );
    for (name, order) in &orders {
        let mapper = PageMapper::new(order, layout);
        let mut pages = 0usize;
        let mut seeks = 0usize;
        let mut cost = 0.0f64;
        for p in spec.iter_points() {
            let mut q = vec![spec.index_of(&p)];
            for d in 0..2 {
                if p[d] > 0 {
                    let mut c = p.clone();
                    c[d] -= 1;
                    q.push(spec.index_of(&c));
                }
                if p[d] + 1 < side {
                    let mut c = p.clone();
                    c[d] += 1;
                    q.push(spec.index_of(&c));
                }
            }
            let io = model.query_cost(&mapper, q.iter().copied());
            pages += io.pages;
            seeks += io.runs;
            cost += io.total;
        }
        println!("{:>10}  {:>11}  {:>9}  {:>12.1}", name, pages, seeks, cost);
    }

    println!(
        "\nSeeks dominate the model (10 : 0.1 per page). On compact window queries\n\
         the Hilbert curve's square-tile recursion is hard to beat; on\n\
         neighbour-probe workloads the spectral order matches Hilbert's seeks\n\
         and roughly halves Sweep's cost — its global optimisation keeps every\n\
         adjacent pair close, which is exactly what probe workloads reward."
    );
}
