//! Section 4's extensibility scenario: access-affinity edges.
//!
//! "Whenever point p is accessed, point q will be accessed soon
//! afterwards." We simulate such a correlated access trace, mine affinity
//! edges from it, feed them to Spectral LPM, and show that the hot pair
//! moves together in the 1-D order — at a measurable (small) cost to
//! everyone else.
//!
//! Run with: `cargo run --release --example access_affinity`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spectral_lpm::affinity::{affinity_from_trace, apply_affinity};
use spectral_lpm::objective;
use spectral_lpm_repro::prelude::*;

fn main() {
    let side = 8usize;
    let spec = GridSpec::cube(side, 2);
    let base = spec.graph(Connectivity::Orthogonal);
    let n = spec.num_points();

    // The hot pair: two far-apart points that an application always
    // accesses back to back (say, a junction and its overview tile).
    let p = spec.index_of(&[1, 1]);
    let q = spec.index_of(&[6, 6]);

    // Simulate an access trace: mostly uniform, but p is followed by q
    // (and vice versa) 30% of the time.
    let mut rng = StdRng::seed_from_u64(42);
    let mut trace = Vec::with_capacity(4000);
    while trace.len() < 4000 {
        let v = rng.gen_range(0..n);
        trace.push(v);
        if v == p && rng.gen_bool(0.9) {
            trace.push(q);
        } else if v == q && rng.gen_bool(0.9) {
            trace.push(p);
        }
    }

    // Mine affinity edges from the trace (window 1 = immediate successor).
    let mut edges = affinity_from_trace(n, &trace, 1);
    // Keep only significant correlations. A specific random pair appears
    // ~|trace| · 2/n² ≈ 2 times; the planted pair appears ~60 times, so a
    // threshold at 15 isolates real correlations from noise.
    edges.retain(|e| e.weight >= 15.0);
    println!(
        "Mined {} significant affinity edge(s) from a {}-access trace:",
        edges.len(),
        trace.len()
    );
    for e in &edges {
        println!(
            "  {:?} <-> {:?}  weight {:.1}",
            spec.coords_of(e.u),
            spec.coords_of(e.v),
            e.weight
        );
    }

    // Map without and with affinity.
    let mapper = SpectralMapper::new(SpectralConfig::default());
    let plain = mapper.map_graph(&base).expect("connected");
    let affine = mapper
        .map_graph_with_affinity(&base, &edges)
        .expect("connected");

    let extended = apply_affinity(&base, &edges).expect("edges validated");
    println!(
        "\nGraph: {} base edges, {} with affinity",
        base.num_edges(),
        extended.num_edges()
    );
    println!(
        "\n1-D distance of the hot pair {:?} <-> {:?}:",
        spec.coords_of(p),
        spec.coords_of(q)
    );
    println!("  without affinity: {}", plain.order.distance(p, q));
    println!("  with affinity:    {}", affine.order.distance(p, q));
    println!(
        "\nArrangement cost on the *base* grid (2-sum, lower = better locality for everyone):"
    );
    println!(
        "  without affinity: {:.1}",
        objective::two_sum_cost(&base, &plain.order)
    );
    println!(
        "  with affinity:    {:.1}",
        objective::two_sum_cost(&base, &affine.order)
    );
    println!(
        "\nThe affinity edge buys the hot pair proximity at a global cost to the\n\
         rest of the arrangement — the trade Section 4 of the paper describes.\n\
         The heavier the edge (or the more edges mined), the stronger the pull\n\
         and the higher the cost; see `cargo run -p slpm-bench --bin ablations`\n\
         for the full weight sweep."
    );
}
