//! Quickstart: map an 8×8 grid with Spectral LPM and compare it against the
//! Hilbert curve on the paper's basic locality question.
//!
//! Run with: `cargo run --release --example quickstart`

use spectral_lpm_repro::prelude::*;

fn main() {
    // 1. The multi-dimensional space: an 8×8 grid of points.
    let spec = GridSpec::cube(8, 2);

    // 2. Spectral LPM (paper Figure 2): graph → Laplacian → Fiedler vector
    //    → linear order.
    let mapper = SpectralMapper::new(SpectralConfig::default());
    let mapping = mapper.map_grid(&spec).expect("grid is connected");
    println!(
        "Spectral LPM on the 8x8 grid: lambda_2 = {:.6}, eigen-residual = {:.2e}",
        mapping.fiedler.lambda2, mapping.fiedler.residual
    );

    // 3. A fractal competitor: the Hilbert curve.
    let hilbert = HilbertCurve::from_side(2, 8).expect("8 is a power of two");
    let hilbert_order = slpm_querysim::mappings::curve_order(&spec, &hilbert);

    // 4. Show both orders as rank grids.
    for (name, order) in [("Spectral", &mapping.order), ("Hilbert", &hilbert_order)] {
        println!("\n{name} order (rank of each grid cell):");
        for x in 0..8 {
            let row: Vec<String> = (0..8)
                .map(|y| format!("{:>3}", order.rank_of(spec.index_of(&[x, y]))))
                .collect();
            println!("  {}", row.join(" "));
        }
    }

    // 5. The paper's basic question: how far apart can two adjacent points
    //    land in 1-D?
    println!();
    for (name, order) in [("Spectral", &mapping.order), ("Hilbert", &hilbert_order)] {
        let stats = slpm_querysim::metrics::pair_distance_stats(&spec, order, 1);
        println!(
            "{name:>8}: adjacent pairs land max {} / mean {:.2} positions apart",
            stats.max, stats.mean
        );
    }
    println!("\nLower is better — the spectral order avoids the fractal boundary effect.");
}
