//! R-tree packing — and the limits of spectral optimality.
//!
//! The paper lists R-tree packing among the applications where Spectral
//! LPM could replace fractal curves. This example packs R-trees by Sweep,
//! Hilbert and Spectral orders and reports packing quality and query cost —
//! an *honest* demonstration: Hilbert wins this application (its quadrant
//! recursion tiles leaves perfectly), which is precisely why Hilbert-packed
//! R-trees became the standard. Optimality for the spectral relaxation is
//! not optimality for every downstream cost model.
//!
//! Run with: `cargo run --release --example rtree_packing`

use slpm_querysim::mappings::curve_order;
use slpm_storage::{Mbr, PackedRTree};
use spectral_lpm_repro::prelude::*;

fn main() {
    let side = 16usize;
    let spec = GridSpec::cube(side, 2);
    let points: Vec<Vec<i64>> = spec
        .iter_points()
        .map(|c| c.into_iter().map(|x| x as i64).collect())
        .collect();

    let sweep = curve_order(&spec, &SweepCurve::new(&[16, 16]).unwrap());
    let hilbert = curve_order(&spec, &HilbertCurve::from_side(2, 16).unwrap());
    let spectral = SpectralMapper::new(SpectralConfig::default())
        .map_grid(&spec)
        .expect("grid connected")
        .order;

    println!("Packing {} points into R-trees (fanout 8):\n", points.len());
    println!(
        "{:>10}  {:>12}  {:>12}  {:>8}  {:>14}",
        "order", "leaf volume", "leaf margin", "height", "nodes visited"
    );
    for (name, order) in [
        ("Sweep", &sweep),
        ("Hilbert", &hilbert),
        ("Spectral", &spectral),
    ] {
        let tree = PackedRTree::pack(&points, order, 8);
        // Query workload: every 4×4 window.
        let mut visited = 0usize;
        for x in 0..=side - 4 {
            for y in 0..=side - 4 {
                let q = Mbr {
                    lo: vec![x as i64, y as i64],
                    hi: vec![(x + 3) as i64, (y + 3) as i64],
                };
                let (results, cost) = tree.range_query(&q);
                assert_eq!(results.len(), 16, "every 4x4 window holds 16 points");
                visited += cost.nodes_visited;
            }
        }
        println!(
            "{:>10}  {:>12}  {:>12}  {:>8}  {:>14}",
            name,
            tree.total_leaf_volume(),
            tree.total_leaf_margin(),
            tree.height(),
            visited
        );
    }

    println!(
        "\nHilbert's recursive tiles give the tightest leaves and the fewest node\n\
         visits; the spectral order's diagonal level-sets pack poorly here.\n\
         Compare with `cargo run -p slpm-bench --bin knn`, where the roles flip."
    );
}
